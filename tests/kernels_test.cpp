// Parity and contract tests for the kernel dispatch layer (src/nn/kernels).
//
// The load-bearing property: every backend (scalar, SSE, AVX2) produces
// bitwise-identical results for the exact kernels — fp32 GEMM, relu,
// relu_grad, scale, row_max, quantize_s8, int8 GEMM — because SIMD lanes
// mirror the scalar loop's operation order and no FMA contraction is
// allowed. The polynomial transcendentals (exp/tanh/sigmoid) are
// backend-invariant bitwise but only approximate libm, to a documented
// tolerance. The scalar backend is compiled with auto-vectorization off, so
// these comparisons diff SIMD code against genuinely scalar IEEE
// arithmetic.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/kernels/kernels.h"
#include "nn/quantize.h"

namespace adamel {
namespace {

namespace kernels = nn::kernels;

std::vector<float> RandomVector(int64_t n, float scale, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) {
    x = rng.Normal() * scale;
  }
  return v;
}

// Backends other than scalar that this machine can run.
std::vector<const kernels::KernelBackend*> SimdBackends() {
  std::vector<const kernels::KernelBackend*> backends;
  for (const kernels::Isa isa : kernels::AvailableIsas()) {
    if (isa != kernels::Isa::kScalar) {
      backends.push_back(kernels::BackendFor(isa));
    }
  }
  return backends;
}

const kernels::KernelBackend& Scalar() {
  return *kernels::BackendFor(kernels::Isa::kScalar);
}

TEST(KernelDispatchTest, ScalarAlwaysAvailable) {
  const std::vector<kernels::Isa> isas = kernels::AvailableIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), kernels::Isa::kScalar);
  EXPECT_NE(kernels::BackendFor(kernels::Isa::kScalar), nullptr);
  EXPECT_STREQ(kernels::IsaName(kernels::Isa::kScalar), "scalar");
}

TEST(KernelDispatchTest, SetBackendForTestingPinsActive) {
  const kernels::Isa original = kernels::ActiveIsa();
  for (const kernels::Isa isa : kernels::AvailableIsas()) {
    kernels::SetBackendForTesting(isa);
    EXPECT_EQ(kernels::ActiveIsa(), isa);
    EXPECT_STREQ(kernels::Active().name, kernels::IsaName(isa));
  }
  kernels::ResetBackendForTesting();
  EXPECT_EQ(kernels::ActiveIsa(), original);
}

// -- fp32 GEMM ---------------------------------------------------------------

// Shapes chosen to cover full panels, a ragged final panel (n % 16 != 0),
// sub-panel n, and k values that stress the accumulation loop.
struct GemmShape {
  int m, k, n;
};
const GemmShape kGemmShapes[] = {{1, 1, 1},   {3, 5, 7},    {4, 17, 16},
                                 {8, 32, 33}, {5, 300, 48}, {2, 64, 256},
                                 {7, 2, 31}};

TEST(GemmF32Test, ScalarMatchesNaiveReference) {
  // The scalar backend must compute c[i][j] = sum_k a[i][k] * b[k][j] with
  // k ascending, one mul and one add per step — the same sequence as this
  // naive loop, hence bitwise equality.
  for (const GemmShape& s : kGemmShapes) {
    const std::vector<float> a =
        RandomVector(int64_t{s.m} * s.k, 1.0f, 101 + s.n);
    const std::vector<float> b =
        RandomVector(int64_t{s.k} * s.n, 1.0f, 202 + s.m);
    const std::vector<float> packed = kernels::PackPanelsF32(b.data(), s.k, s.n);
    std::vector<float> c(int64_t{s.m} * s.n, 0.0f);
    Scalar().gemm_f32_block(a.data(), 0, s.m, s.k, s.n, packed.data(),
                            c.data(), /*accumulate=*/false);
    for (int i = 0; i < s.m; ++i) {
      for (int j = 0; j < s.n; ++j) {
        float acc = 0.0f;
        for (int kk = 0; kk < s.k; ++kk) {
          acc += a[int64_t{i} * s.k + kk] * b[int64_t{kk} * s.n + j];
        }
        ASSERT_EQ(c[int64_t{i} * s.n + j], acc)
            << "m=" << s.m << " k=" << s.k << " n=" << s.n << " at (" << i
            << "," << j << ")";
      }
    }
  }
}

TEST(GemmF32Test, SimdBackendsMatchScalarBitwise) {
  for (const GemmShape& s : kGemmShapes) {
    const std::vector<float> a =
        RandomVector(int64_t{s.m} * s.k, 1.0f, 11 + s.k);
    const std::vector<float> b =
        RandomVector(int64_t{s.k} * s.n, 1.0f, 22 + s.n);
    const std::vector<float> packed = kernels::PackPanelsF32(b.data(), s.k, s.n);
    for (const bool accumulate : {false, true}) {
      std::vector<float> expected =
          RandomVector(int64_t{s.m} * s.n, 0.5f, 33);
      Scalar().gemm_f32_block(a.data(), 0, s.m, s.k, s.n, packed.data(),
                              expected.data(), accumulate);
      for (const kernels::KernelBackend* backend : SimdBackends()) {
        std::vector<float> c = RandomVector(int64_t{s.m} * s.n, 0.5f, 33);
        backend->gemm_f32_block(a.data(), 0, s.m, s.k, s.n, packed.data(),
                                c.data(), accumulate);
        ASSERT_EQ(std::memcmp(c.data(), expected.data(),
                              c.size() * sizeof(float)),
                  0)
            << backend->name << " m=" << s.m << " k=" << s.k << " n=" << s.n
            << " accumulate=" << accumulate;
      }
    }
  }
}

TEST(GemmF32Test, RowRangeOnlyTouchesItsRows) {
  // The parallel GEMM hands each worker a row range; a backend writing
  // outside [row_begin, row_end) would race.
  const int m = 8, k = 40, n = 33;
  const std::vector<float> a = RandomVector(int64_t{m} * k, 1.0f, 5);
  const std::vector<float> b = RandomVector(int64_t{k} * n, 1.0f, 6);
  const std::vector<float> packed = kernels::PackPanelsF32(b.data(), k, n);
  for (const kernels::Isa isa : kernels::AvailableIsas()) {
    const kernels::KernelBackend& backend = *kernels::BackendFor(isa);
    std::vector<float> whole(int64_t{m} * n, 0.0f);
    backend.gemm_f32_block(a.data(), 0, m, k, n, packed.data(), whole.data(),
                           false);
    std::vector<float> pieces(int64_t{m} * n, 0.0f);
    backend.gemm_f32_block(a.data(), 0, 3, k, n, packed.data(), pieces.data(),
                           false);
    backend.gemm_f32_block(a.data(), 3, 7, k, n, packed.data(), pieces.data(),
                           false);
    backend.gemm_f32_block(a.data(), 7, 8, k, n, packed.data(), pieces.data(),
                           false);
    EXPECT_EQ(std::memcmp(whole.data(), pieces.data(),
                          whole.size() * sizeof(float)),
              0)
        << backend.name;
  }
}

// -- exact elementwise -------------------------------------------------------

TEST(ElementwiseTest, ReluMatchesScalarBitwiseIncludingSpecials) {
  std::vector<float> x = RandomVector(1003, 2.0f, 7);
  x[0] = 0.0f;
  x[1] = -0.0f;
  x[2] = std::numeric_limits<float>::infinity();
  x[3] = -std::numeric_limits<float>::infinity();
  x[4] = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> expected(x.size());
  Scalar().relu(x.data(), expected.data(), x.size());
  // Scalar semantics: x > 0 ? x : 0 — NaN and -0.0 both map to +0.0.
  EXPECT_EQ(expected[4], 0.0f);
  for (const kernels::KernelBackend* backend : SimdBackends()) {
    std::vector<float> y(x.size());
    backend->relu(x.data(), y.data(), x.size());
    EXPECT_EQ(std::memcmp(y.data(), expected.data(), y.size() * sizeof(float)),
              0)
        << backend->name;
  }
}

TEST(ElementwiseTest, ReluGradAccumulatesAndMatchesScalar) {
  std::vector<float> x = RandomVector(517, 2.0f, 8);
  x[0] = 0.0f;
  x[1] = -0.0f;
  const std::vector<float> g = RandomVector(x.size(), 1.0f, 9);
  std::vector<float> expected = RandomVector(x.size(), 0.5f, 10);
  Scalar().relu_grad(x.data(), g.data(), expected.data(), x.size());
  for (const kernels::KernelBackend* backend : SimdBackends()) {
    std::vector<float> dx = RandomVector(x.size(), 0.5f, 10);
    backend->relu_grad(x.data(), g.data(), dx.data(), x.size());
    EXPECT_EQ(
        std::memcmp(dx.data(), expected.data(), dx.size() * sizeof(float)), 0)
        << backend->name;
  }
  // Semantics: dx += g where x > 0, dx unchanged elsewhere.
  std::vector<float> dx(4, 1.0f);
  const float xs[4] = {2.0f, -2.0f, 0.0f, 3.0f};
  const float gs[4] = {0.5f, 0.5f, 0.5f, -1.0f};
  Scalar().relu_grad(xs, gs, dx.data(), 4);
  EXPECT_EQ(dx[0], 1.5f);
  EXPECT_EQ(dx[1], 1.0f);
  EXPECT_EQ(dx[2], 1.0f);
  EXPECT_EQ(dx[3], 0.0f);
}

TEST(ElementwiseTest, ScaleAndRowMaxMatchScalarBitwise) {
  const std::vector<float> x = RandomVector(777, 3.0f, 11);
  std::vector<float> expected(x.size());
  Scalar().scale(x.data(), 0.37f, expected.data(), x.size());
  const float expected_max = Scalar().row_max(x.data(), x.size());
  for (const kernels::KernelBackend* backend : SimdBackends()) {
    std::vector<float> y(x.size());
    backend->scale(x.data(), 0.37f, y.data(), x.size());
    EXPECT_EQ(std::memcmp(y.data(), expected.data(), y.size() * sizeof(float)),
              0)
        << backend->name;
    EXPECT_EQ(backend->row_max(x.data(), x.size()), expected_max)
        << backend->name;
  }
  // Short rows exercise the scalar tail alone.
  for (int64_t n = 1; n <= 9; ++n) {
    const float short_max = Scalar().row_max(x.data(), n);
    for (const kernels::KernelBackend* backend : SimdBackends()) {
      EXPECT_EQ(backend->row_max(x.data(), n), short_max)
          << backend->name << " n=" << n;
    }
  }
}

// -- polynomial transcendentals ----------------------------------------------

TEST(PolyTranscendentalTest, BackendsAgreeBitwise) {
  // Includes the clamp region boundaries and values around 0.
  std::vector<float> x = RandomVector(2048, 10.0f, 12);
  x.insert(x.end(), {-100.0f, -87.0f, -0.5f, -0.0f, 0.0f, 0.5f, 87.0f, 100.0f});
  std::vector<float> exp_ref(x.size()), tanh_ref(x.size()), sig_ref(x.size());
  Scalar().exp_f32(x.data(), exp_ref.data(), x.size());
  Scalar().tanh_f32(x.data(), tanh_ref.data(), x.size());
  Scalar().sigmoid_f32(x.data(), sig_ref.data(), x.size());
  for (const kernels::KernelBackend* backend : SimdBackends()) {
    std::vector<float> y(x.size());
    backend->exp_f32(x.data(), y.data(), x.size());
    EXPECT_EQ(
        std::memcmp(y.data(), exp_ref.data(), y.size() * sizeof(float)), 0)
        << backend->name << " exp";
    backend->tanh_f32(x.data(), y.data(), x.size());
    EXPECT_EQ(
        std::memcmp(y.data(), tanh_ref.data(), y.size() * sizeof(float)), 0)
        << backend->name << " tanh";
    backend->sigmoid_f32(x.data(), y.data(), x.size());
    EXPECT_EQ(
        std::memcmp(y.data(), sig_ref.data(), y.size() * sizeof(float)), 0)
        << backend->name << " sigmoid";
  }
}

TEST(PolyTranscendentalTest, TracksLibmWithinDocumentedTolerance) {
  // The documented accuracy contract from kernels.h: |rel err| < 3e-6 for
  // exp over [-87, 88], |abs err| < 4e-6 for tanh and sigmoid.
  std::vector<float> x;
  for (double v = -87.0; v <= 88.0; v += 0.0625) {
    x.push_back(static_cast<float>(v));
  }
  std::vector<float> y(x.size());
  Scalar().exp_f32(x.data(), y.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const double exact = std::exp(static_cast<double>(x[i]));
    EXPECT_LT(std::abs(y[i] - exact) / exact, 3e-6) << "exp(" << x[i] << ")";
  }
  Scalar().tanh_f32(x.data(), y.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_LT(std::abs(y[i] - std::tanh(static_cast<double>(x[i]))), 4e-6)
        << "tanh(" << x[i] << ")";
  }
  Scalar().sigmoid_f32(x.data(), y.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const double exact = 1.0 / (1.0 + std::exp(-static_cast<double>(x[i])));
    EXPECT_LT(std::abs(y[i] - exact), 4e-6) << "sigmoid(" << x[i] << ")";
  }
}

TEST(PolyTranscendentalTest, SaturatesFiniteAtExtremeInputs) {
  // exp's 2^n exponent trick must not overflow to inf inside the clamp
  // (a past bug made tanh(|v| > 44) return inf/inf = NaN).
  const float x[] = {-1000.0f, -100.0f, -44.5f, 44.5f, 100.0f, 1000.0f};
  float y[6];
  for (const kernels::Isa isa : kernels::AvailableIsas()) {
    const kernels::KernelBackend& backend = *kernels::BackendFor(isa);
    backend.exp_f32(x, y, 6);
    EXPECT_EQ(y[0], 0.0f) << kernels::IsaName(isa);
    EXPECT_TRUE(std::isfinite(y[5])) << kernels::IsaName(isa);
    backend.tanh_f32(x, y, 6);
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(y[i], x[i] < 0 ? -1.0f : 1.0f)
          << kernels::IsaName(isa) << " tanh(" << x[i] << ")";
    }
    backend.sigmoid_f32(x, y, 6);
    for (int i = 0; i < 6; ++i) {
      // Negative tail decays toward 1/(1 + exp_clamp) ~ 6e-39; at the
      // mildest input here (-44.5) it is e^{-44.5} ~ 4.7e-20.
      if (x[i] < 0) {
        EXPECT_LT(y[i], 1e-19f)
            << kernels::IsaName(isa) << " sigmoid(" << x[i] << ")";
      } else {
        EXPECT_EQ(y[i], 1.0f)
            << kernels::IsaName(isa) << " sigmoid(" << x[i] << ")";
      }
    }
  }
}

// -- int8 quantization -------------------------------------------------------

TEST(QuantizeTest, RoundsToNearestEvenAndSaturates) {
  const float x[] = {0.5f,  1.5f,  2.5f,  -0.5f, -1.5f,
                     -2.5f, 126.6f, 1000.0f, -1000.0f, 0.0f};
  int8_t q[10];
  for (const kernels::Isa isa : kernels::AvailableIsas()) {
    kernels::BackendFor(isa)->quantize_s8(x, 1.0f, q, 10);
    EXPECT_EQ(q[0], 0) << kernels::IsaName(isa);   // 0.5 -> even 0
    EXPECT_EQ(q[1], 2) << kernels::IsaName(isa);   // 1.5 -> even 2
    EXPECT_EQ(q[2], 2) << kernels::IsaName(isa);   // 2.5 -> even 2
    EXPECT_EQ(q[3], 0) << kernels::IsaName(isa);
    EXPECT_EQ(q[4], -2) << kernels::IsaName(isa);
    EXPECT_EQ(q[5], -2) << kernels::IsaName(isa);
    EXPECT_EQ(q[6], 127) << kernels::IsaName(isa);
    EXPECT_EQ(q[7], 127) << kernels::IsaName(isa);   // saturate high
    EXPECT_EQ(q[8], -127) << kernels::IsaName(isa);  // symmetric low
    EXPECT_EQ(q[9], 0) << kernels::IsaName(isa);
  }
}

TEST(QuantizeTest, BackendsAgreeBitwiseOnRandomData) {
  const std::vector<float> x = RandomVector(4099, 5.0f, 13);
  const float inv_scale = 127.0f / 16.0f;
  std::vector<int8_t> expected(x.size());
  Scalar().quantize_s8(x.data(), inv_scale, expected.data(), x.size());
  for (const kernels::KernelBackend* backend : SimdBackends()) {
    std::vector<int8_t> q(x.size());
    backend->quantize_s8(x.data(), inv_scale, q.data(), x.size());
    EXPECT_EQ(std::memcmp(q.data(), expected.data(), q.size()), 0)
        << backend->name;
  }
}

TEST(QuantizeTest, DequantizeRoundTripErrorBounded) {
  // Symmetric scheme: |x - q * scale| <= scale / 2 for x inside the
  // representable range [-127*scale, 127*scale].
  const std::vector<float> x = RandomVector(2000, 3.0f, 14);
  const float scale = nn::SymmetricScale(nn::MaxAbs(x.data(), x.size()));
  std::vector<int8_t> q(x.size());
  Scalar().quantize_s8(x.data(), 1.0f / scale, q.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(std::abs(x[i] - q[i] * scale), scale * 0.5f + 1e-6f) << i;
  }
}

TEST(QuantizeTest, SymmetricScaleOfAllZerosIsFinite) {
  // An all-zero tensor must not produce a zero (or inf) scale — the
  // fallback is 1.0, and every value quantizes to 0 exactly.
  const std::vector<float> zeros(16, 0.0f);
  EXPECT_EQ(nn::MaxAbs(zeros.data(), zeros.size()), 0.0f);
  EXPECT_EQ(nn::SymmetricScale(0.0f), 1.0f);
}

// -- int8 GEMM ---------------------------------------------------------------

TEST(GemmS8Test, MatchesIntegerReferenceOnEveryBackend) {
  // Int32 accumulation is exact, so every backend must equal a plain
  // integer reference — this validates the pair-interleaved packing too.
  Rng rng(15);
  for (const GemmShape& s : kGemmShapes) {
    std::vector<int8_t> a(int64_t{s.m} * s.k);
    std::vector<int8_t> b(int64_t{s.k} * s.n);
    for (int8_t& v : a) {
      v = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 254) - 127);
    }
    for (int8_t& v : b) {
      v = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 254) - 127);
    }
    const std::vector<int8_t> packed = kernels::PackPanelsS8(b.data(), s.k, s.n);
    const int k_padded =
        (s.k + kernels::kQuantKUnroll - 1) / kernels::kQuantKUnroll *
        kernels::kQuantKUnroll;
    std::vector<int8_t> a_padded(int64_t{s.m} * k_padded, 0);
    for (int i = 0; i < s.m; ++i) {
      std::memcpy(a_padded.data() + int64_t{i} * k_padded,
                  a.data() + int64_t{i} * s.k, s.k);
    }
    std::vector<int32_t> reference(int64_t{s.m} * s.n, 0);
    for (int i = 0; i < s.m; ++i) {
      for (int j = 0; j < s.n; ++j) {
        int32_t acc = 0;
        for (int kk = 0; kk < s.k; ++kk) {
          acc += static_cast<int32_t>(a[int64_t{i} * s.k + kk]) *
                 static_cast<int32_t>(b[int64_t{kk} * s.n + j]);
        }
        reference[int64_t{i} * s.n + j] = acc;
      }
    }
    for (const kernels::Isa isa : kernels::AvailableIsas()) {
      std::vector<int32_t> c(int64_t{s.m} * s.n, -1);
      kernels::BackendFor(isa)->gemm_s8_block(a_padded.data(), 0, s.m,
                                              k_padded, s.n, packed.data(),
                                              c.data());
      ASSERT_EQ(std::memcmp(c.data(), reference.data(),
                            c.size() * sizeof(int32_t)),
                0)
          << kernels::IsaName(isa) << " m=" << s.m << " k=" << s.k
          << " n=" << s.n;
    }
  }
}

TEST(QuantizedGemmTest, ApproximatesFp32WithinQuantizationError) {
  const int m = 9, k = 37, n = 21;
  const std::vector<float> a = RandomVector(int64_t{m} * k, 0.7f, 16);
  const std::vector<float> w = RandomVector(int64_t{k} * n, 0.5f, 17);
  const std::vector<float> bias = RandomVector(n, 0.3f, 18);
  const nn::QuantizedGemmB qb = nn::QuantizeForGemm(w.data(), k, n);
  const float a_scale = nn::SymmetricScale(nn::MaxAbs(a.data(), a.size()));
  std::vector<float> c(int64_t{m} * n);
  nn::QuantizedGemm(a.data(), m, k, a_scale, qb, bias.data(), c.data());
  // Per-element error bound: each operand is off by at most half a step, so
  // |err| <= 0.5*a_scale*sum|w_col| + 0.5*w_scale*sum|a_row| (+ cross term,
  // negligible). Use the loose version with both sums maximized.
  float max_abs_a = 0.0f, max_abs_w = 0.0f;
  for (float v : a) max_abs_a = std::max(max_abs_a, std::abs(v));
  for (float v : w) max_abs_w = std::max(max_abs_w, std::abs(v));
  const float bound =
      0.5f * k * (a_scale * max_abs_w + qb.scale * max_abs_a) +
      0.25f * k * a_scale * qb.scale;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float exact = bias[j];
      for (int kk = 0; kk < k; ++kk) {
        exact += a[int64_t{i} * k + kk] * w[int64_t{kk} * n + j];
      }
      EXPECT_NEAR(c[int64_t{i} * n + j], exact, bound)
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(QuantizedGemmTest, ResultIsBackendInvariantBitwise) {
  // The whole quantized pipeline is integer-exact between quantize and
  // dequantize, so even the final float outputs agree bitwise across
  // backends.
  const int m = 6, k = 33, n = 19;
  const std::vector<float> a = RandomVector(int64_t{m} * k, 0.7f, 19);
  const std::vector<float> w = RandomVector(int64_t{k} * n, 0.5f, 20);
  const nn::QuantizedGemmB qb = nn::QuantizeForGemm(w.data(), k, n);
  const float a_scale = nn::SymmetricScale(nn::MaxAbs(a.data(), a.size()));
  std::vector<float> reference(int64_t{m} * n);
  kernels::SetBackendForTesting(kernels::Isa::kScalar);
  nn::QuantizedGemm(a.data(), m, k, a_scale, qb, nullptr, reference.data());
  for (const kernels::Isa isa : kernels::AvailableIsas()) {
    kernels::SetBackendForTesting(isa);
    std::vector<float> c(int64_t{m} * n);
    nn::QuantizedGemm(a.data(), m, k, a_scale, qb, nullptr, c.data());
    EXPECT_EQ(std::memcmp(c.data(), reference.data(),
                          c.size() * sizeof(float)),
              0)
        << kernels::IsaName(isa);
  }
  kernels::ResetBackendForTesting();
}

// -- packing -----------------------------------------------------------------

TEST(PackingTest, PackPanelsF32LayoutAndZeroPadding) {
  const int k = 3, n = 18;  // one full panel + a ragged 2-column panel
  std::vector<float> src(int64_t{k} * n);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<float>(i + 1);
  }
  const std::vector<float> packed = kernels::PackPanelsF32(src.data(), k, n);
  const int panels = 2;
  ASSERT_EQ(packed.size(),
            static_cast<size_t>(panels) * k * kernels::kGemmPanel);
  for (int p = 0; p < panels; ++p) {
    for (int kk = 0; kk < k; ++kk) {
      for (int jj = 0; jj < kernels::kGemmPanel; ++jj) {
        const int j = p * kernels::kGemmPanel + jj;
        const float expected = j < n ? src[int64_t{kk} * n + j] : 0.0f;
        ASSERT_EQ(packed[(int64_t{p} * k + kk) * kernels::kGemmPanel + jj],
                  expected)
            << "panel " << p << " k " << kk << " lane " << jj;
      }
    }
  }
}

TEST(PackingTest, TransposedPackMatchesPackOfTranspose) {
  const int k = 7, n = 20;
  const std::vector<float> src = RandomVector(int64_t{n} * k, 1.0f, 21);
  std::vector<float> transposed(int64_t{k} * n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < k; ++c) {
      transposed[int64_t{c} * n + r] = src[int64_t{r} * k + c];
    }
  }
  EXPECT_EQ(kernels::PackPanelsTransposedF32(src.data(), k, n),
            kernels::PackPanelsF32(transposed.data(), k, n));
}

}  // namespace
}  // namespace adamel
