// Tests for src/core: feature extraction (Eq. 2-3), the AdaMEL model
// (Eq. 4-7), and the trainer variants (Algorithms 1-3).

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/features.h"
#include "core/model.h"
#include "core/trainer.h"
#include "datagen/music_world.h"
#include "eval/metrics.h"
#include "nn/ops.h"

namespace adamel::core {
namespace {

data::Record MakeRecord(std::vector<std::string> values) {
  data::Record record;
  record.id = "r";
  record.source = "s";
  record.values = std::move(values);
  return record;
}

data::LabeledPair MakePair(std::vector<std::string> left,
                           std::vector<std::string> right, int label) {
  data::LabeledPair pair;
  pair.left = MakeRecord(std::move(left));
  pair.right = MakeRecord(std::move(right));
  pair.label = label;
  return pair;
}

// A tiny linearly-learnable linkage dataset: pairs match iff the "key"
// attribute shares its token.
data::PairDataset ToyDataset(int n, uint64_t seed) {
  Rng rng(seed);
  data::PairDataset dataset(data::Schema({"key", "noise"}));
  for (int i = 0; i < n; ++i) {
    const bool match = rng.Bernoulli(0.5);
    const std::string key = "key" + std::to_string(rng.UniformInt(50));
    const std::string other =
        match ? key : "key" + std::to_string(rng.UniformInt(50) + 50);
    dataset.Add(MakePair({key, "blah" + std::to_string(rng.UniformInt(9))},
                         {other, "blub" + std::to_string(rng.UniformInt(9))},
                         match ? data::kMatch : data::kNonMatch));
  }
  return dataset;
}

// ---------------------------------------------------------------- features

TEST(FeatureExtractorTest, FeatureNamesPerMode) {
  const data::Schema schema({"a", "b"});
  const FeatureExtractor both(schema, FeatureMode::kSharedAndUnique, 8);
  EXPECT_EQ(both.feature_names(),
            (std::vector<std::string>{"a_shared", "a_unique", "b_shared",
                                      "b_unique"}));
  EXPECT_EQ(both.feature_count(), 4);
  const FeatureExtractor shared(schema, FeatureMode::kSharedOnly, 8);
  EXPECT_EQ(shared.feature_count(), 2);
  EXPECT_EQ(shared.feature_names()[0], "a_shared");
  const FeatureExtractor unique(schema, FeatureMode::kUniqueOnly, 8);
  EXPECT_EQ(unique.feature_names()[1], "b_unique");
}

TEST(FeatureExtractorTest, RowWidthIsFeatureCountTimesDim) {
  const FeatureExtractor extractor(data::Schema({"a", "b"}),
                                   FeatureMode::kSharedAndUnique, 16);
  const auto row = extractor.FeaturizePair(
      MakePair({"x y", "p"}, {"y z", "q"}, data::kMatch));
  EXPECT_EQ(row.size(), 4u * 16u);
}

TEST(FeatureExtractorTest, MissingValueUsesFixedVector) {
  const FeatureExtractor extractor(data::Schema({"a"}),
                                   FeatureMode::kSharedAndUnique, 8);
  const auto row1 =
      extractor.FeaturizePair(MakePair({""}, {"hello"}, data::kMatch));
  const auto row2 =
      extractor.FeaturizePair(MakePair({"bye"}, {""}, data::kMatch));
  // Both sides of the missing case collapse to the same fixed vector.
  EXPECT_EQ(row1, row2);
  // And the vector is non-zero (Section 4.3).
  double norm = 0.0;
  for (float v : row1) {
    norm += std::fabs(v);
  }
  EXPECT_GT(norm, 0.1);
}

TEST(FeatureExtractorTest, EmptyContrastIsZeroNotMissing) {
  const FeatureExtractor extractor(data::Schema({"a"}),
                                   FeatureMode::kSharedAndUnique, 8);
  // Disjoint values: shared set empty -> zero vector, distinct from the
  // missing-value encoding.
  const auto disjoint =
      extractor.FeaturizePair(MakePair({"aaa"}, {"bbb"}, data::kMatch));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(disjoint[i], 0.0f) << "shared part should be zero";
  }
  // Identical values: unique set empty -> zero vector.
  const auto identical =
      extractor.FeaturizePair(MakePair({"aaa"}, {"aaa"}, data::kMatch));
  for (int i = 8; i < 16; ++i) {
    EXPECT_EQ(identical[i], 0.0f) << "unique part should be zero";
  }
  const auto missing =
      extractor.FeaturizePair(MakePair({""}, {"aaa"}, data::kMatch));
  EXPECT_NE(disjoint, missing);
}

TEST(FeatureExtractorTest, SharedTokensLandInSharedFeature) {
  const FeatureExtractor extractor(data::Schema({"a"}),
                                   FeatureMode::kSharedAndUnique, 16);
  const auto same =
      extractor.FeaturizePair(MakePair({"hello"}, {"hello"}, 1));
  const auto diff =
      extractor.FeaturizePair(MakePair({"hello"}, {"world"}, 1));
  // Shared part nonzero when tokens overlap, zero otherwise.
  double same_shared = 0.0;
  double diff_shared = 0.0;
  for (int i = 0; i < 16; ++i) {
    same_shared += std::fabs(same[i]);
    diff_shared += std::fabs(diff[i]);
  }
  EXPECT_GT(same_shared, 0.1);
  EXPECT_EQ(diff_shared, 0.0);
}

TEST(FeatureExtractorTest, FeaturizeDatasetShapesAndLabels) {
  const data::PairDataset dataset = ToyDataset(20, 1);
  const FeatureExtractor extractor(dataset.schema(),
                                   FeatureMode::kSharedAndUnique, 8);
  const FeaturizedPairs features = extractor.Featurize(dataset);
  EXPECT_EQ(features.pair_count, 20);
  EXPECT_EQ(features.matrix.rows(), 20);
  EXPECT_EQ(features.matrix.cols(), 4 * 8);
  EXPECT_EQ(features.labels.size(), 20u);
  EXPECT_EQ(features.feature_count, 4);
}

// ------------------------------------------------------------------ model

TEST(AdamelModelTest, ForwardShapes) {
  Rng rng(2);
  AdamelConfig config;
  config.embed_dim = 8;
  config.latent_dim = 6;
  config.attention_dim = 5;
  config.hidden_dim = 7;
  const AdamelModel model(4, config, &rng);
  const nn::Tensor h = nn::Tensor::RandomNormal(3, 4 * 8, 1.0f, &rng);
  const AdamelModel::Output out = model.Forward(h);
  EXPECT_EQ(out.attention.rows(), 3);
  EXPECT_EQ(out.attention.cols(), 4);
  EXPECT_EQ(out.logits.rows(), 3);
  EXPECT_EQ(out.logits.cols(), 1);
}

TEST(AdamelModelTest, AttentionRowsSumToOne) {
  Rng rng(3);
  AdamelConfig config;
  config.embed_dim = 8;
  const AdamelModel model(6, config, &rng);
  const nn::Tensor h = nn::Tensor::RandomNormal(5, 6 * 8, 2.0f, &rng);
  const nn::Tensor attention = model.ForwardAttention(h);
  for (int r = 0; r < attention.rows(); ++r) {
    double total = 0.0;
    for (int c = 0; c < attention.cols(); ++c) {
      EXPECT_GE(attention.At(r, c), 0.0f);
      total += attention.At(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(AdamelModelTest, ParameterCountMatchesFormula) {
  Rng rng(4);
  AdamelConfig config;
  config.embed_dim = 10;    // D
  config.latent_dim = 6;    // H
  config.attention_dim = 5; // H'
  config.hidden_dim = 7;    // classifier hidden
  const int f = 3;
  const AdamelModel model(f, config, &rng);
  // F*(D*H + H) per-feature affine + (H*H' + H') attention + classifier
  // ((F*H)*Hh + Hh + Hh*1 + 1).
  const int64_t expected = f * (10 * 6 + 6) + (6 * 5 + 5) +
                           ((f * 6) * 7 + 7 + 7 * 1 + 1);
  EXPECT_EQ(model.ParameterCount(), expected);
}

TEST(AdamelModelTest, AttentionDependsOnInput) {
  Rng rng(5);
  AdamelConfig config;
  config.embed_dim = 8;
  const AdamelModel model(4, config, &rng);
  const nn::Tensor h1 = nn::Tensor::RandomNormal(1, 32, 1.0f, &rng);
  const nn::Tensor h2 = nn::Tensor::RandomNormal(1, 32, 1.0f, &rng);
  const nn::Tensor a1 = model.ForwardAttention(h1);
  const nn::Tensor a2 = model.ForwardAttention(h2);
  double diff = 0.0;
  for (int c = 0; c < 4; ++c) {
    diff += std::fabs(a1.At(0, c) - a2.At(0, c));
  }
  EXPECT_GT(diff, 1e-4);
}

// ---------------------------------------------------------------- trainer

TEST(AdamelTrainerTest, LearnsSeparableToyTask) {
  const data::PairDataset train = ToyDataset(300, 10);
  const data::PairDataset test = ToyDataset(150, 11);
  AdamelConfig config;
  config.epochs = 20;
  config.seed = 1;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  const TrainedAdamel model = trainer.Fit(AdamelVariant::kBase, inputs);
  std::vector<int> labels;
  for (const auto& pair : test.pairs()) {
    labels.push_back(pair.label == data::kMatch ? 1 : 0);
  }
  EXPECT_GT(eval::AveragePrecision(model.ScorePairs(test), labels), 0.95);
}

TEST(AdamelTrainerTest, PredictionsAreProbabilities) {
  const data::PairDataset train = ToyDataset(50, 12);
  AdamelConfig config;
  config.epochs = 2;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  const TrainedAdamel model = trainer.Fit(AdamelVariant::kBase, inputs);
  for (float score : model.ScorePairs(train)) {
    EXPECT_GE(score, 0.0f);
    EXPECT_LE(score, 1.0f);
  }
}

TEST(AdamelTrainerTest, DeterministicGivenSeed) {
  const data::PairDataset train = ToyDataset(60, 13);
  AdamelConfig config;
  config.epochs = 3;
  config.seed = 77;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  const std::vector<float> a =
      trainer.Fit(AdamelVariant::kBase, inputs).ScorePairs(train);
  const std::vector<float> b =
      trainer.Fit(AdamelVariant::kBase, inputs).ScorePairs(train);
  EXPECT_EQ(a, b);
}

TEST(AdamelTrainerTest, HistoryHasOneEntryPerEpoch) {
  const data::PairDataset train = ToyDataset(60, 14);
  AdamelConfig config;
  config.epochs = 5;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  std::vector<EpochStats> history;
  trainer.Fit(AdamelVariant::kBase, inputs, &history);
  EXPECT_EQ(history.size(), 5u);
  // Loss should broadly decrease on a learnable task.
  EXPECT_LT(history.back().base_loss, history.front().base_loss);
}

TEST(AdamelTrainerTest, ZeroVariantUsesTargetLoss) {
  const data::PairDataset train = ToyDataset(60, 15);
  const data::PairDataset target = ToyDataset(60, 16).WithoutLabels();
  AdamelConfig config;
  config.epochs = 3;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  inputs.target_unlabeled = &target;
  std::vector<EpochStats> history;
  trainer.Fit(AdamelVariant::kZero, inputs, &history);
  EXPECT_GT(history.front().target_loss, 0.0);
  EXPECT_EQ(history.front().support_loss, 0.0);
}

TEST(AdamelTrainerTest, FewVariantUsesSupportLoss) {
  const data::PairDataset train = ToyDataset(60, 17);
  const data::PairDataset support = ToyDataset(20, 18);
  AdamelConfig config;
  config.epochs = 3;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  inputs.support = &support;
  std::vector<EpochStats> history;
  trainer.Fit(AdamelVariant::kFew, inputs, &history);
  EXPECT_GT(history.front().support_loss, 0.0);
  EXPECT_EQ(history.front().target_loss, 0.0);
}

TEST(AdamelTrainerTest, SupportLossAveragedOverSupportStepsOnly) {
  // Regression: with support_every > 1 the support loss used to be divided
  // by the total batch count even though it was only computed on every k-th
  // batch, understating it by a factor of ~k. With batch_size 32 over 320
  // pairs there are 10 batches; support_every = 10 means exactly one
  // support step per epoch. An untrained model's unweighted BCE is ~ln 2 ≈
  // 0.69 — the buggy average reported ~0.069.
  const data::PairDataset train = ToyDataset(320, 19);
  const data::PairDataset support = ToyDataset(20, 20);
  AdamelConfig config;
  config.epochs = 1;
  config.batch_size = 32;
  config.support_every = 10;
  config.support_deviation_weights = false;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  inputs.support = &support;
  std::vector<EpochStats> history;
  trainer.Fit(AdamelVariant::kFew, inputs, &history);
  ASSERT_EQ(history.size(), 1u);
  EXPECT_GT(history.front().support_loss, 0.3);
}

TEST(AdamelTrainerTest, LambdaOneDisablesBaseSupervision) {
  // At lambda = 1 the model has no label supervision (Figure 8's cliff):
  // predictions should be near-chance on the toy task.
  const data::PairDataset train = ToyDataset(200, 19);
  const data::PairDataset target = ToyDataset(100, 20).WithoutLabels();
  const data::PairDataset test = ToyDataset(100, 21);
  AdamelConfig config;
  config.epochs = 10;
  config.lambda = 1.0f;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  inputs.target_unlabeled = &target;
  const TrainedAdamel model = trainer.Fit(AdamelVariant::kZero, inputs);
  std::vector<int> labels;
  for (const auto& pair : test.pairs()) {
    labels.push_back(pair.label == data::kMatch ? 1 : 0);
  }
  // Chance AP is the positive prevalence (~0.5); a supervised model hits
  // ~1.0 (see LearnsSeparableToyTask).
  EXPECT_LT(eval::AveragePrecision(model.ScorePairs(test), labels), 0.85);
}

TEST(AdamelTrainerTest, AttentionVectorsMatchFeatureCount) {
  const data::PairDataset train = ToyDataset(40, 22);
  AdamelConfig config;
  config.epochs = 2;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  const TrainedAdamel model = trainer.Fit(AdamelVariant::kBase, inputs);
  const auto vectors = model.AttentionVectors(train);
  ASSERT_EQ(vectors.size(), 40u);
  EXPECT_EQ(vectors[0].size(), 4u);  // 2 attributes x shared/unique
}

TEST(AdamelTrainerTest, MeanAttentionSortedAndNormalized) {
  const data::PairDataset train = ToyDataset(40, 23);
  AdamelConfig config;
  config.epochs = 2;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  const TrainedAdamel model = trainer.Fit(AdamelVariant::kBase, inputs);
  const auto importance = model.MeanAttention(train);
  ASSERT_EQ(importance.size(), 4u);
  double total = 0.0;
  for (size_t i = 0; i < importance.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(importance[i - 1].second, importance[i].second);
    }
    total += importance[i].second;
  }
  EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST(AdamelTrainerTest, LearnsToAttendToInformativeAttribute) {
  // The "key" attribute decides the label; "noise" is random. The learned
  // attention should rank a key feature above both noise features.
  const data::PairDataset train = ToyDataset(400, 24);
  AdamelConfig config;
  config.epochs = 15;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  const TrainedAdamel model = trainer.Fit(AdamelVariant::kBase, inputs);
  const auto importance = model.MeanAttention(train);
  EXPECT_NE(importance[0].first.find("key"), std::string::npos)
      << "top feature was " << importance[0].first;
}

TEST(AdamelLinkageTest, ImplementsInterfaceEndToEnd) {
  const data::PairDataset train = ToyDataset(80, 25);
  const data::PairDataset target = ToyDataset(40, 26).WithoutLabels();
  const data::PairDataset support = ToyDataset(20, 27);
  AdamelConfig config;
  config.epochs = 3;
  AdamelLinkage linkage(AdamelVariant::kHyb, config);
  EXPECT_EQ(linkage.Name(), "AdaMEL-hyb");
  MelInputs inputs;
  inputs.source_train = &train;
  inputs.target_unlabeled = &target;
  inputs.support = &support;
  ASSERT_TRUE(linkage.Fit(inputs).ok());
  EXPECT_EQ(linkage.ScorePairs(train).value().size(), 80u);
  EXPECT_GT(linkage.ParameterCount(), 0);
}

TEST(VariantNameTest, AllNamesStable) {
  EXPECT_STREQ(AdamelVariantName(AdamelVariant::kBase), "AdaMEL-base");
  EXPECT_STREQ(AdamelVariantName(AdamelVariant::kZero), "AdaMEL-zero");
  EXPECT_STREQ(AdamelVariantName(AdamelVariant::kFew), "AdaMEL-few");
  EXPECT_STREQ(AdamelVariantName(AdamelVariant::kHyb), "AdaMEL-hyb");
}

}  // namespace
}  // namespace adamel::core
