// Property-based tests for the autograd engine: randomized composite
// graphs are gradient-checked against finite differences, and algebraic
// identities of the ops are verified across random inputs. These sweeps
// complement the per-op unit tests in ops_test.cpp by exercising op
// *compositions* the training loops actually build.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/grad_check.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/ops.h"

namespace adamel::nn {
namespace {

constexpr double kTol = 3e-2;

// Builds a random elementwise-safe unary transformation.
Tensor RandomUnary(const Tensor& x, Rng* rng) {
  switch (rng->UniformInt(5)) {
    case 0:
      return Tanh(x);
    case 1:
      return Sigmoid(x);
    case 2:
      return Relu(x);
    case 3:
      return Square(x);
    default:
      return MulScalar(x, static_cast<float>(rng->Uniform(-2.0, 2.0)));
  }
}

// A random three-layer composite graph over one parameter.
class RandomGraphGradCheck : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphGradCheck, AnalyticMatchesNumeric) {
  Rng seed_rng(GetParam());
  Tensor param = Tensor::RandomNormal(3, 4, 0.6f, &seed_rng,
                                      /*requires_grad=*/true);
  const Tensor mix = Tensor::RandomNormal(4, 3, 0.8f, &seed_rng);
  const uint64_t structure_seed = seed_rng.Next();
  auto loss_fn = [&]() {
    Rng rng(structure_seed);  // same random structure on every rebuild
    Tensor h = RandomUnary(param, &rng);
    h = MatMul(h, mix);                    // 3x3
    h = RandomUnary(h, &rng);
    h = Add(h, Transpose(h));              // reuse: diamond dependency
    h = Softmax(h);
    return Mean(RandomUnary(h, &rng));
  };
  const GradCheckResult result = CheckGradient(loss_fn, param);
  EXPECT_LT(result.max_relative_error, kTol)
      << "seed " << GetParam() << " worst " << result.worst_index;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphGradCheck,
                         ::testing::Range(0, 16));

// Softmax properties over random matrices.
class SoftmaxPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxPropertySweep, RowsAreDistributions) {
  Rng rng(GetParam() + 100);
  const int rows = rng.UniformInt(1, 6);
  const int cols = rng.UniformInt(2, 9);
  const Tensor x = Tensor::RandomNormal(rows, cols, 4.0f, &rng);
  const Tensor s = Softmax(x);
  for (int r = 0; r < rows; ++r) {
    double total = 0.0;
    float max_val = 0.0f;
    int argmax_s = 0;
    float max_x = x.At(r, 0);
    int argmax_x = 0;
    for (int c = 0; c < cols; ++c) {
      ASSERT_GT(s.At(r, c), 0.0f);
      total += s.At(r, c);
      if (s.At(r, c) > max_val) {
        max_val = s.At(r, c);
        argmax_s = c;
      }
      if (x.At(r, c) > max_x) {
        max_x = x.At(r, c);
        argmax_x = c;
      }
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
    // Softmax is order-preserving: argmax carries over.
    EXPECT_EQ(argmax_s, argmax_x);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxPropertySweep,
                         ::testing::Range(0, 10));

// BCE-with-logits properties: non-negative, zero iff perfectly confident
// and correct, monotone in miscalibration.
class BcePropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(BcePropertySweep, NonNegativeAndCalibrationMonotone) {
  Rng rng(GetParam() + 200);
  const int n = rng.UniformInt(2, 12);
  std::vector<float> logits_values(n);
  std::vector<float> targets(n);
  for (int i = 0; i < n; ++i) {
    logits_values[i] = static_cast<float>(rng.Normal(0.0, 3.0));
    targets[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  const Tensor logits = Tensor::FromVector(n, 1, logits_values);
  const float loss = BceWithLogits(logits, targets).At(0, 0);
  EXPECT_GE(loss, 0.0f);

  // Pushing every logit toward its own label must not increase the loss.
  std::vector<float> better(n);
  for (int i = 0; i < n; ++i) {
    better[i] = logits_values[i] + (targets[i] > 0.5f ? 1.0f : -1.0f);
  }
  const float better_loss =
      BceWithLogits(Tensor::FromVector(n, 1, better), targets).At(0, 0);
  EXPECT_LE(better_loss, loss + 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BcePropertySweep, ::testing::Range(0, 10));

// KL properties: non-negative, zero iff equal, grows with divergence.
class KlPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(KlPropertySweep, GibbsInequality) {
  Rng rng(GetParam() + 300);
  const int f = rng.UniformInt(2, 8);
  // Random reference distribution p.
  std::vector<float> p(f);
  float p_total = 0.0f;
  for (float& v : p) {
    v = static_cast<float>(rng.Uniform(0.05, 1.0));
    p_total += v;
  }
  for (float& v : p) {
    v /= p_total;
  }
  // q identical to p -> KL == 0.
  const Tensor q_same = Tensor::FromVector(1, f, p);
  EXPECT_NEAR(RowKlDivergence(p, q_same).At(0, 0), 0.0, 1e-4);
  // Random q -> KL >= 0.
  const Tensor q_rand = Softmax(Tensor::RandomNormal(3, f, 2.0f, &rng));
  EXPECT_GE(RowKlDivergence(p, q_rand).At(0, 0), -1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KlPropertySweep, ::testing::Range(0, 10));

// MatMul algebra: (AB)^T == B^T A^T and distributivity over addition.
class MatMulAlgebraSweep : public ::testing::TestWithParam<int> {};

TEST_P(MatMulAlgebraSweep, TransposeAndDistributivity) {
  Rng rng(GetParam() + 400);
  const int m = rng.UniformInt(1, 5);
  const int k = rng.UniformInt(1, 5);
  const int n = rng.UniformInt(1, 5);
  const Tensor a = Tensor::RandomNormal(m, k, 1.0f, &rng);
  const Tensor b = Tensor::RandomNormal(k, n, 1.0f, &rng);
  const Tensor c = Tensor::RandomNormal(k, n, 1.0f, &rng);

  const Tensor left = Transpose(MatMul(a, b));
  const Tensor right = MatMul(Transpose(b), Transpose(a));
  ASSERT_EQ(left.rows(), right.rows());
  for (int i = 0; i < left.size(); ++i) {
    EXPECT_NEAR(left.data()[i], right.data()[i], 1e-4);
  }

  const Tensor distributed = MatMul(a, Add(b, c));
  const Tensor expanded = Add(MatMul(a, b), MatMul(a, c));
  for (int i = 0; i < distributed.size(); ++i) {
    EXPECT_NEAR(distributed.data()[i], expanded.data()[i], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulAlgebraSweep,
                         ::testing::Range(0, 10));

// Training property: one Adam step on a fresh graph strictly decreases a
// smooth convex loss for small enough learning rates.
class OptimizerDescentSweep : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerDescentSweep, AdamStepDecreasesConvexLoss) {
  Rng rng(GetParam() + 500);
  Tensor w = Tensor::RandomNormal(2, 3, 1.0f, &rng, /*requires_grad=*/true);
  const Tensor target = Tensor::RandomNormal(2, 3, 1.0f, &rng);
  auto loss_value = [&] {
    return Sum(Square(Sub(w, target))).At(0, 0);
  };
  Adam adam({w}, 0.01f);
  const float before = loss_value();
  for (int step = 0; step < 5; ++step) {
    adam.ZeroGrad();
    Tensor loss = Sum(Square(Sub(w, target)));
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(loss_value(), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerDescentSweep,
                         ::testing::Range(0, 8));

// Module composition gradient check: Linear -> Highway -> Linear.
class ModuleChainGradCheck : public ::testing::TestWithParam<int> {};

TEST_P(ModuleChainGradCheck, EndToEnd) {
  Rng rng(GetParam() + 600);
  Linear in(3, 4, &rng);
  HighwayLayer mid(4, &rng);
  Linear out(4, 1, &rng);
  const Tensor x = Tensor::RandomNormal(3, 3, 1.0f, &rng);
  auto loss = [&] {
    return Sum(Square(out.Forward(mid.Forward(in.Forward(x)))));
  };
  Tensor probe = in.Parameters()[0];
  EXPECT_LT(CheckGradient(loss, probe).max_relative_error, kTol);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModuleChainGradCheck,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace adamel::nn
