// Property/fuzz tests for the CSV layer (data/csv.h). The reader's
// contract: for ANY byte string, ParseCsv either returns a table or a
// clean InvalidArgument Status — it never crashes, hangs, or exhibits UB.
// For tables produced by FormatCsv, parsing is the exact inverse. All
// randomness flows through the repo's seeded Rng, so every "fuzz" case is
// reproducible from the fixed seeds below.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/csv.h"

namespace adamel {
namespace {

// Characters weighted toward CSV structure so random strings actually
// exercise the quoting/terminator state machine instead of being plain
// text.
std::string RandomCsvText(Rng& rng, int max_len) {
  static const std::string alphabet = "abc,\"\n\r 123\t;";
  const int len = rng.UniformInt(max_len + 1);
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    out.push_back(alphabet[static_cast<size_t>(
        rng.UniformInt(static_cast<int>(alphabet.size())))]);
  }
  return out;
}

// A random field value over the full troublesome alphabet, including
// embedded quotes, commas, CR, LF, and CRLF sequences.
std::string RandomField(Rng& rng) {
  std::string out;
  const int len = rng.UniformInt(12);
  for (int i = 0; i < len; ++i) {
    switch (rng.UniformInt(8)) {
      case 0:
        out.push_back('"');
        break;
      case 1:
        out.push_back(',');
        break;
      case 2:
        out.push_back('\n');
        break;
      case 3:
        out.push_back('\r');
        break;
      case 4:
        out += "\r\n";
        break;
      default:
        out.push_back(static_cast<char>('a' + rng.UniformInt(26)));
    }
  }
  return out;
}

data::CsvTable RandomTable(Rng& rng) {
  data::CsvTable table;
  const int columns = rng.UniformInt(1, 6);
  for (int c = 0; c < columns; ++c) {
    // Headers must be distinct enough to not matter; values can be nasty.
    table.header.push_back("col" + std::to_string(c) + RandomField(rng));
  }
  const int rows = rng.UniformInt(0, 8);
  for (int r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < columns; ++c) {
      row.push_back(RandomField(rng));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

TEST(CsvFuzzTest, RandomBytesNeverCrashTheParser) {
  Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string text = RandomCsvText(rng, 64);
    const StatusOr<data::CsvTable> parsed = data::ParseCsv(text);
    if (parsed.ok()) {
      // Structural invariants of any accepted table.
      for (const std::vector<std::string>& row : parsed.value().rows) {
        EXPECT_EQ(row.size(), parsed.value().header.size());
      }
    }
  }
}

TEST(CsvFuzzTest, LongFieldsRoundTrip) {
  data::CsvTable table;
  table.header = {"id", "blob"};
  // A multi-megabyte field with every troublesome character class.
  std::string giant;
  giant.reserve(2 << 20);
  Rng rng(7);
  while (giant.size() < (2u << 20)) {
    giant += RandomField(rng);
    giant += "padding-";
  }
  table.rows.push_back({"1", giant});
  const StatusOr<data::CsvTable> parsed =
      data::ParseCsv(data::FormatCsv(table));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().rows.size(), 1u);
  EXPECT_EQ(parsed.value().rows[0][1], giant);
}

TEST(CsvFuzzTest, FormattedTablesAlwaysParseBackIdentically) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    const data::CsvTable table = RandomTable(rng);
    const std::string text = data::FormatCsv(table);
    const StatusOr<data::CsvTable> parsed = data::ParseCsv(text);
    ASSERT_TRUE(parsed.ok())
        << "trial " << trial << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed.value().header, table.header) << "trial " << trial;
    EXPECT_EQ(parsed.value().rows, table.rows) << "trial " << trial;
  }
}

TEST(CsvFuzzTest, TruncationsOfValidCsvNeverCrash) {
  data::CsvTable table;
  table.header = {"a", "b"};
  table.rows.push_back({"plain", "quoted,\"with\"\nnewline\r\nand cr\r!"});
  table.rows.push_back({"", "empty-first"});
  const std::string full = data::FormatCsv(table);
  // Every prefix of a valid document must parse or fail cleanly; an
  // unterminated quote must fail with InvalidArgument, not hang or crash.
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    const StatusOr<data::CsvTable> parsed =
        data::ParseCsv(full.substr(0, cut));
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << "cut " << cut;
    }
  }
}

TEST(CsvFuzzTest, MalformedInputsReturnStatusNotCrash) {
  // Canonical malformed cases with their expected failure reason.
  EXPECT_FALSE(data::ParseCsv("").ok());                  // empty document
  EXPECT_FALSE(data::ParseCsv("\"unterminated").ok());    // open quote
  EXPECT_FALSE(data::ParseCsv("a,b\n1\n").ok());          // ragged row
  EXPECT_FALSE(data::ParseCsv("a,b\n1,2,3\n").ok());      // too many fields
  EXPECT_FALSE(data::ParseCsv("a,b\r1\r").ok());          // ragged, CR rows

  // Line-terminator zoo: CRLF, bare CR, bare LF all delimit rows.
  const StatusOr<data::CsvTable> mixed =
      data::ParseCsv("a,b\r\n1,2\r3,4\n5,6");
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  EXPECT_EQ(mixed.value().rows.size(), 3u);
  EXPECT_EQ(mixed.value().rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvFuzzTest, QuotedTerminatorsStayInsideFields) {
  const StatusOr<data::CsvTable> parsed =
      data::ParseCsv("a,b\n\"x\r\ny\",\"u\rv\"\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().rows.size(), 1u);
  EXPECT_EQ(parsed.value().rows[0][0], "x\r\ny");
  EXPECT_EQ(parsed.value().rows[0][1], "u\rv");
}

}  // namespace
}  // namespace adamel
