// Tests for src/data: schema/record alignment, PairDataset operations,
// stratified splitting, support sampling, CSV round-trips, and blocking.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "data/blocking.h"
#include "data/candidate_source.h"
#include "data/csv.h"
#include "data/pair_dataset.h"
#include "data/record.h"

namespace adamel::data {
namespace {

Record MakeRecord(const std::string& id, const std::string& source,
                  std::vector<std::string> values) {
  Record record;
  record.id = id;
  record.source = source;
  record.values = std::move(values);
  return record;
}

PairDataset SmallDataset() {
  PairDataset dataset(Schema({"name", "year"}));
  for (int i = 0; i < 10; ++i) {
    // std::to_string first, then append: `"l" + std::to_string(i)` trips a
    // GCC 12 -Wrestrict false positive (PR 105329) when inlined under -O3.
    const std::string id = std::to_string(i);
    LabeledPair pair;
    pair.left = MakeRecord("l" + id, "src_a", {"name " + id, "2000"});
    pair.right = MakeRecord("r" + id, "src_b", {"name " + id, "2001"});
    pair.label = i < 4 ? kMatch : kNonMatch;
    dataset.Add(std::move(pair));
  }
  return dataset;
}

// ---------------------------------------------------------------- schema

TEST(SchemaTest, IndexLookup) {
  const Schema schema({"a", "b", "c"});
  EXPECT_EQ(schema.size(), 3);
  EXPECT_EQ(schema.IndexOf("b"), 1);
  EXPECT_EQ(schema.IndexOf("z"), -1);
  EXPECT_TRUE(schema.Contains("c"));
}

TEST(SchemaTest, EqualityIsOrderSensitive) {
  EXPECT_TRUE(Schema({"a", "b"}) == Schema({"a", "b"}));
  EXPECT_FALSE(Schema({"a", "b"}) == Schema({"b", "a"}));
}

TEST(AlignSchemasTest, UnionPreservesLeftOrder) {
  const Schema merged =
      AlignSchemas(Schema({"a", "b"}), Schema({"b", "c", "d"}));
  EXPECT_EQ(merged.attributes(),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(ReprojectRecordTest, FillsMissingWithEmpty) {
  const Schema from({"a", "b"});
  const Schema to({"b", "c", "a"});
  const Record record = MakeRecord("r1", "s", {"va", "vb"});
  const Record projected = ReprojectRecord(record, from, to);
  EXPECT_EQ(projected.values,
            (std::vector<std::string>{"vb", "", "va"}));
  EXPECT_EQ(projected.source, "s");
}

TEST(RecordTest, IsMissingChecksEmptyString) {
  const Record record = MakeRecord("r", "s", {"x", ""});
  EXPECT_FALSE(record.IsMissing(0));
  EXPECT_TRUE(record.IsMissing(1));
}

// ------------------------------------------------------------ PairDataset

TEST(PairDatasetTest, CountsAndPositiveRate) {
  const PairDataset dataset = SmallDataset();
  EXPECT_EQ(dataset.size(), 10);
  EXPECT_EQ(dataset.CountLabel(kMatch), 4);
  EXPECT_EQ(dataset.CountLabel(kNonMatch), 6);
  EXPECT_DOUBLE_EQ(dataset.PositiveRate(), 0.4);
}

TEST(PairDatasetTest, SourcesCollectsBothSides) {
  const PairDataset dataset = SmallDataset();
  EXPECT_EQ(dataset.Sources(), (std::set<std::string>{"src_a", "src_b"}));
}

TEST(PairDatasetTest, LabelsAsFloat) {
  const PairDataset dataset = SmallDataset();
  const std::vector<float> labels = dataset.LabelsAsFloat();
  EXPECT_FLOAT_EQ(labels[0], 1.0f);
  EXPECT_FLOAT_EQ(labels[9], 0.0f);
}

TEST(PairDatasetTest, FilterSelectsByIndex) {
  const PairDataset dataset = SmallDataset();
  const PairDataset filtered = dataset.Filter({0, 5});
  EXPECT_EQ(filtered.size(), 2);
  EXPECT_EQ(filtered.pair(0).label, kMatch);
  EXPECT_EQ(filtered.pair(1).label, kNonMatch);
}

TEST(PairDatasetTest, SampleCapsSize) {
  const PairDataset dataset = SmallDataset();
  Rng rng(1);
  EXPECT_EQ(dataset.Sample(3, &rng).size(), 3);
  EXPECT_EQ(dataset.Sample(100, &rng).size(), 10);
}

TEST(PairDatasetTest, WithoutLabelsUnlabelsEverything) {
  const PairDataset unlabeled = SmallDataset().WithoutLabels();
  for (const LabeledPair& pair : unlabeled.pairs()) {
    EXPECT_EQ(pair.label, kUnlabeled);
  }
  EXPECT_EQ(unlabeled.CountLabel(kUnlabeled), 10);
}

TEST(PairDatasetTest, AppendRequiresSameSchemaAndConcatenates) {
  PairDataset a = SmallDataset();
  const PairDataset b = SmallDataset();
  a.Append(b);
  EXPECT_EQ(a.size(), 20);
}

TEST(PairDatasetTest, ReprojectChangesSchema) {
  const PairDataset dataset = SmallDataset();
  const PairDataset projected =
      dataset.Reproject(Schema({"year", "genre"}));
  EXPECT_EQ(projected.schema().attribute(0), "year");
  EXPECT_EQ(projected.pair(0).left.values[0], "2000");
  EXPECT_EQ(projected.pair(0).left.values[1], "");  // new attribute
}

TEST(PairDatasetTest, ProjectAttributesSubset) {
  const PairDataset dataset = SmallDataset();
  const PairDataset projected = dataset.ProjectAttributes({"year"});
  EXPECT_EQ(projected.schema().size(), 1);
  EXPECT_EQ(projected.pair(0).right.values[0], "2001");
  EXPECT_EQ(projected.pair(3).label, kMatch);
}

TEST(StratifiedSplitTest, KeepsClassBalance) {
  PairDataset dataset(Schema({"x"}));
  for (int i = 0; i < 100; ++i) {
    LabeledPair pair;
    pair.left = MakeRecord("l", "a", {"v"});
    pair.right = MakeRecord("r", "b", {"v"});
    pair.label = i < 30 ? kMatch : kNonMatch;
    dataset.Add(std::move(pair));
  }
  Rng rng(2);
  const auto [train, test] = StratifiedSplit(dataset, 0.7, &rng);
  EXPECT_EQ(train.size() + test.size(), 100);
  EXPECT_EQ(train.CountLabel(kMatch), 21);
  EXPECT_EQ(test.CountLabel(kMatch), 9);
}

TEST(StratifiedSplitTest, ExtremeFractions) {
  const PairDataset dataset = SmallDataset();
  Rng rng(3);
  const auto [all_train, empty_test] = StratifiedSplit(dataset, 1.0, &rng);
  EXPECT_EQ(all_train.size(), 10);
  EXPECT_EQ(empty_test.size(), 0);
}

TEST(SampleSupportSetTest, ExactComposition) {
  const PairDataset dataset = SmallDataset();
  Rng rng(4);
  const PairDataset support = SampleSupportSet(dataset, 2, 3, &rng);
  EXPECT_EQ(support.size(), 5);
  EXPECT_EQ(support.CountLabel(kMatch), 2);
  EXPECT_EQ(support.CountLabel(kNonMatch), 3);
}

// ------------------------------------------------------------------ CSV

TEST(CsvTest, ParsesQuotedFields) {
  const auto table = ParseCsv("a,b\n\"x,1\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][0], "x,1");
  EXPECT_EQ(table->rows[0][1], "he said \"hi\"");
}

TEST(CsvTest, HandlesCrLfAndEmbeddedNewlines) {
  const auto table = ParseCsv("a,b\r\n\"line1\nline2\",y\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "line1\nline2");
}

TEST(CsvTest, BareCrTerminatesRow) {
  // Classic-Mac line endings: every "\r" is a row terminator. This used to
  // parse as one giant concatenated row because the "\r" was dropped.
  const auto table = ParseCsv("a,b\r1,2\r3,4\r");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(table->rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvTest, MixedLineEndingsParseIdentically) {
  const auto lf = ParseCsv("a,b\n1,2\n3,4\n");
  const auto crlf = ParseCsv("a,b\r\n1,2\r\n3,4\r\n");
  const auto cr = ParseCsv("a,b\r1,2\r3,4\r");
  const auto mixed = ParseCsv("a,b\r\n1,2\r3,4\n");
  ASSERT_TRUE(lf.ok());
  ASSERT_TRUE(crlf.ok());
  ASSERT_TRUE(cr.ok());
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(crlf->rows, lf->rows);
  EXPECT_EQ(cr->rows, lf->rows);
  EXPECT_EQ(mixed->rows, lf->rows);
}

TEST(CsvTest, CrlfDoesNotProduceEmptyRows) {
  // The LF of a CRLF pair must be consumed with the CR, not read as a
  // second, empty row terminator.
  const auto table = ParseCsv("a\r\n\r\n1\r\n");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][0], "1");
}

TEST(CsvTest, QuotedCarriageReturnSurvivesRoundTrip) {
  // A "\r" inside a field is data, not a row break; the writer quotes it
  // and the parser must preserve it through a round trip.
  CsvTable table;
  table.header = {"name", "note"};
  table.rows = {{"mac", "line1\rline2"}, {"win", "line1\r\nline2"}};
  const auto reparsed = ParseCsv(FormatCsv(table));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->header, table.header);
  EXPECT_EQ(reparsed->rows, table.rows);
}

TEST(CsvTest, RejectsRaggedRows) {
  const auto table = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(CsvTest, RejectsEmpty) { EXPECT_FALSE(ParseCsv("").ok()); }

TEST(CsvTest, FormatParseRoundTrip) {
  CsvTable table;
  table.header = {"name", "note"};
  table.rows = {{"plain", "with,comma"}, {"quo\"te", "new\nline"}};
  const auto reparsed = ParseCsv(FormatCsv(table));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->header, table.header);
  EXPECT_EQ(reparsed->rows, table.rows);
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable table;
  table.header = {"k", "v"};
  table.rows = {{"x", "1"}};
  const std::string path = ::testing::TempDir() + "/adamel_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  const auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows, table.rows);
}

TEST(CsvTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/nope.csv").status().code(),
            StatusCode::kIoError);
}

TEST(PairDatasetCsvTest, RoundTripPreservesEverything) {
  const PairDataset dataset = SmallDataset();
  const CsvTable table = PairDatasetToCsv(dataset);
  const auto restored = PairDatasetFromCsv(table);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), dataset.size());
  EXPECT_TRUE(restored->schema() == dataset.schema());
  for (int i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(restored->pair(i).label, dataset.pair(i).label);
    EXPECT_EQ(restored->pair(i).left.values, dataset.pair(i).left.values);
    EXPECT_EQ(restored->pair(i).right.source, dataset.pair(i).right.source);
  }
}

TEST(PairDatasetCsvTest, UnlabeledPairsKeepEmptyLabel) {
  const PairDataset dataset = SmallDataset().WithoutLabels();
  const auto restored = PairDatasetFromCsv(PairDatasetToCsv(dataset));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->pair(0).label, kUnlabeled);
}

TEST(PairDatasetCsvTest, RejectsForeignCsv) {
  CsvTable table;
  table.header = {"foo", "bar"};
  EXPECT_FALSE(PairDatasetFromCsv(table).ok());
}

// -------------------------------------------------------------- blocking

TEST(BlockingTest, FindsSharedTokenCandidates) {
  const Schema schema({"title"});
  std::vector<Record> records = {
      MakeRecord("0", "a", {"abbey road remaster"}),
      MakeRecord("1", "b", {"abbey road original"}),
      MakeRecord("2", "c", {"completely different thing"}),
  };
  const text::Tokenizer tokenizer;
  BlockingOptions options;
  options.max_token_frequency = 0.9;  // tiny corpus: keep df-2 tokens
  const auto candidates =
      GenerateCandidates(records, schema, tokenizer, options).value();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].left, 0);
  EXPECT_EQ(candidates[0].right, 1);
  EXPECT_EQ(candidates[0].shared_tokens, 2);
}

TEST(BlockingTest, StopWordsExcluded) {
  const Schema schema({"title"});
  // "the" appears in every record and must not generate candidates.
  std::vector<Record> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(
        MakeRecord(std::to_string(i), "s", {"the item" + std::to_string(i)}));
  }
  const text::Tokenizer tokenizer;
  BlockingOptions options;
  options.max_token_frequency = 0.3;
  EXPECT_TRUE(GenerateCandidates(records, schema, tokenizer, options)
                  .value()
                  .empty());
}

TEST(BlockingTest, MinSharedTokensFilters) {
  const Schema schema({"title"});
  std::vector<Record> records = {
      MakeRecord("0", "a", {"alpha beta"}),
      MakeRecord("1", "b", {"alpha gamma"}),
  };
  const text::Tokenizer tokenizer;
  BlockingOptions options;
  options.min_shared_tokens = 2;
  EXPECT_TRUE(GenerateCandidates(records, schema, tokenizer, options)
                  .value()
                  .empty());
}

TEST(BlockingTest, PerRecordCapRespected) {
  const Schema schema({"title"});
  std::vector<Record> records;
  for (int i = 0; i < 20; ++i) {
    records.push_back(MakeRecord(std::to_string(i), "s",
                                 {"sharedtok uniq" + std::to_string(i)}));
  }
  const text::Tokenizer tokenizer;
  BlockingOptions options;
  options.max_token_frequency = 1.1;  // keep even the shared token
  options.max_candidates_per_record = 2;
  const auto candidates =
      GenerateCandidates(records, schema, tokenizer, options).value();
  std::vector<int> per_record(20, 0);
  for (const auto& c : candidates) {
    ++per_record[c.left];
    ++per_record[c.right];
  }
  for (int count : per_record) {
    EXPECT_LE(count, 2);
  }
}

TEST(BlockingTest, EmptyRecordListIsInvalidArgument) {
  const Schema schema({"title"});
  const std::vector<Record> records;
  const auto candidates =
      GenerateCandidates(records, schema, text::Tokenizer(), BlockingOptions{});
  ASSERT_FALSE(candidates.ok());
  EXPECT_EQ(candidates.status().code(), StatusCode::kInvalidArgument);
}

TEST(BlockingTest, UnknownKeyAttributeIsInvalidArgument) {
  const Schema schema({"title"});
  const std::vector<Record> records = {MakeRecord("0", "a", {"abbey road"})};
  BlockingOptions options;
  options.key_attributes = {"no_such_attribute"};
  const auto candidates =
      GenerateCandidates(records, schema, text::Tokenizer(), options);
  ASSERT_FALSE(candidates.ok());
  EXPECT_EQ(candidates.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(candidates.status().message().find("no_such_attribute"),
            std::string::npos);
}

TEST(BlockingTest, MalformedRecordIsInvalidArgument) {
  const Schema schema({"title", "artist"});
  std::vector<Record> records = {MakeRecord("0", "a", {"abbey road", "x"}),
                                 MakeRecord("1", "b", {"only one value"})};
  const auto candidates =
      GenerateCandidates(records, schema, text::Tokenizer(), BlockingOptions{});
  ASSERT_FALSE(candidates.ok());
  EXPECT_EQ(candidates.status().code(), StatusCode::kInvalidArgument);
}

TEST(BlockingTest, PerRecordCapIsDeterministic) {
  // Every record shares one token, so the cap must choose; the choice is
  // part of the API contract (most shared tokens first, then lowest pair).
  const Schema schema({"title"});
  std::vector<Record> records;
  for (int i = 0; i < 12; ++i) {
    records.push_back(MakeRecord(std::to_string(i), "s",
                                 {"sharedtok uniq" + std::to_string(i)}));
  }
  BlockingOptions options;
  options.max_token_frequency = 1.1;
  options.max_candidates_per_record = 3;
  const auto first =
      GenerateCandidates(records, schema, text::Tokenizer(), options).value();
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto again =
        GenerateCandidates(records, schema, text::Tokenizer(), options).value();
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(again[i].left, first[i].left);
      EXPECT_EQ(again[i].right, first[i].right);
    }
  }
}

// ------------------------------------------------------ candidate sources

TEST(CandidateSourceTest, TokenBlockingSourceMatchesGenerateCandidates) {
  const Schema schema({"title"});
  std::vector<Record> records = {
      MakeRecord("0", "a", {"abbey road remaster"}),
      MakeRecord("1", "b", {"abbey road original"}),
      MakeRecord("2", "c", {"completely different thing"}),
  };
  BlockingOptions options;
  options.max_token_frequency = 0.9;
  const TokenBlockingSource source{text::Tokenizer(), options};
  EXPECT_EQ(source.Name(), "token-blocking");
  const auto via_source = source.CandidatePairs(records, schema).value();
  const auto direct =
      GenerateCandidates(records, schema, text::Tokenizer(), options).value();
  ASSERT_EQ(via_source.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_source[i].left, direct[i].left);
    EXPECT_EQ(via_source[i].right, direct[i].right);
    EXPECT_EQ(via_source[i].shared_tokens, direct[i].shared_tokens);
  }
}

TEST(CandidateSourceTest, PropagatesValidationErrors) {
  const TokenBlockingSource source{text::Tokenizer()};
  const std::vector<Record> records;
  const auto result = source.CandidatePairs(records, Schema({"title"}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace adamel::data
