// Tests for src/eval: PRAUC / ROC / F1 metrics, aggregation, the report
// tables, t-SNE, and the domain-alignment score.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/tsne.h"

namespace adamel::eval {
namespace {

// ---------------------------------------------------------------- metrics

TEST(AveragePrecisionTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(
      AveragePrecision({0.9f, 0.8f, 0.2f, 0.1f}, {1, 1, 0, 0}), 1.0);
}

TEST(AveragePrecisionTest, WorstRankingEqualsKnownValue) {
  // Positives ranked last: AP = sum over positives of precision at their
  // rank = (1/3 + 2/4)/2.
  EXPECT_NEAR(AveragePrecision({0.9f, 0.8f, 0.2f, 0.1f}, {0, 0, 1, 1}),
              (1.0 / 3.0 + 2.0 / 4.0) / 2.0, 1e-9);
}

TEST(AveragePrecisionTest, SklearnDocExample) {
  // sklearn's documentation example: y = [0,0,1,1],
  // scores = [0.1,0.4,0.35,0.8] -> AP = 0.8333...
  EXPECT_NEAR(AveragePrecision({0.1f, 0.4f, 0.35f, 0.8f}, {0, 0, 1, 1}),
              0.8333333, 1e-6);
}

TEST(AveragePrecisionTest, AllNegativeIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.5f, 0.4f}, {0, 0}), 0.0);
}

TEST(AveragePrecisionTest, RandomScoresApproachPrevalence) {
  Rng rng(1);
  std::vector<float> scores;
  std::vector<int> labels;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(static_cast<float>(rng.Uniform()));
    labels.push_back(rng.Bernoulli(0.2) ? 1 : 0);
  }
  EXPECT_NEAR(AveragePrecision(scores, labels), 0.2, 0.03);
}

TEST(AveragePrecisionTest, InvariantToMonotoneTransform) {
  const std::vector<int> labels = {1, 0, 1, 0, 0, 1, 0};
  const std::vector<float> scores = {0.9f, 0.3f, 0.7f, 0.5f,
                                     0.2f, 0.8f, 0.1f};
  std::vector<float> transformed;
  for (float s : scores) {
    transformed.push_back(std::exp(3.0f * s));
  }
  EXPECT_NEAR(AveragePrecision(scores, labels),
              AveragePrecision(transformed, labels), 1e-9);
}

// Regression tests for score-tie handling: the ranking tie-breaks by
// original index explicitly, and the PR curve collapses each tie run to
// one point, so AP must be bit-identical no matter how the caller ordered
// the tied pairs.

TEST(AveragePrecisionTest, AllTiedScoresEqualPrevalenceExactly) {
  const double ap =
      AveragePrecision({0.5f, 0.5f, 0.5f, 0.5f}, {1, 0, 1, 0});
  EXPECT_EQ(ap, 0.5);
}

TEST(AveragePrecisionTest, LabelOrderWithinTieRunIsIrrelevant) {
  const std::vector<float> scores = {0.9f, 0.5f, 0.5f, 0.5f, 0.5f, 0.1f};
  const double ap = AveragePrecision(scores, {1, 0, 1, 1, 0, 0});
  EXPECT_EQ(AveragePrecision(scores, {1, 1, 0, 0, 1, 0}), ap);
  EXPECT_EQ(AveragePrecision(scores, {1, 1, 1, 0, 0, 0}), ap);
}

TEST(AveragePrecisionTest, DuplicatedScoresArePermutationInvariant) {
  // Heavily tied scores (5 distinct values over 60 pairs), whole-dataset
  // permutations: AP, the PR curve, and best-F1 must all be exactly stable.
  Rng rng(3);
  std::vector<float> scores;
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) {
    scores.push_back(static_cast<float>(rng.UniformInt(5)) / 4.0f);
    labels.push_back(rng.Bernoulli(0.4) ? 1 : 0);
  }
  const double ap = AveragePrecision(scores, labels);
  const double f1 = BestF1(scores, labels);
  const std::vector<PrPoint> curve = PrecisionRecallCurve(scores, labels);

  std::vector<int> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  for (int trial = 0; trial < 10; ++trial) {
    rng.Shuffle(order);
    std::vector<float> permuted_scores;
    std::vector<int> permuted_labels;
    for (const int index : order) {
      permuted_scores.push_back(scores[static_cast<size_t>(index)]);
      permuted_labels.push_back(labels[static_cast<size_t>(index)]);
    }
    EXPECT_EQ(AveragePrecision(permuted_scores, permuted_labels), ap)
        << "trial " << trial;
    EXPECT_EQ(BestF1(permuted_scores, permuted_labels), f1)
        << "trial " << trial;
    const std::vector<PrPoint> permuted_curve =
        PrecisionRecallCurve(permuted_scores, permuted_labels);
    ASSERT_EQ(permuted_curve.size(), curve.size()) << "trial " << trial;
    for (size_t p = 0; p < curve.size(); ++p) {
      EXPECT_EQ(permuted_curve[p].threshold, curve[p].threshold);
      EXPECT_EQ(permuted_curve[p].precision, curve[p].precision);
      EXPECT_EQ(permuted_curve[p].recall, curve[p].recall);
    }
  }
}

TEST(PrecisionRecallCurveTest, EndsAtFullRecall) {
  const auto curve =
      PrecisionRecallCurve({0.9f, 0.5f, 0.1f}, {1, 0, 1});
  ASSERT_FALSE(curve.empty());
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
  EXPECT_DOUBLE_EQ(curve.front().precision, 1.0);
}

TEST(PrecisionRecallCurveTest, TiesCollapseToOnePoint) {
  const auto curve = PrecisionRecallCurve({0.5f, 0.5f}, {1, 0});
  EXPECT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 0.5);
}

TEST(RocAucTest, KnownValues) {
  EXPECT_DOUBLE_EQ(RocAuc({0.9f, 0.1f}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.1f, 0.9f}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.5f, 0.5f}, {1, 0}), 0.5);  // tie -> midrank
  EXPECT_DOUBLE_EQ(RocAuc({0.3f}, {1}), 0.5);           // degenerate
}

TEST(F1Test, AtThresholdKnownValue) {
  // threshold 0.5: predictions {1,1,0}; labels {1,0,1} -> tp=1 fp=1 fn=1.
  EXPECT_NEAR(F1AtThreshold({0.9f, 0.6f, 0.2f}, {1, 0, 1}, 0.5f), 0.5,
              1e-9);
}

TEST(F1Test, BestF1AtLeastFixedThreshold) {
  const std::vector<float> scores = {0.9f, 0.6f, 0.55f, 0.2f};
  const std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_GE(BestF1(scores, labels),
            F1AtThreshold(scores, labels, 0.5f));
  EXPECT_DOUBLE_EQ(BestF1(scores, labels), 1.0);
}

TEST(F1Test, BestF1ZeroWithoutPositives) {
  EXPECT_DOUBLE_EQ(BestF1({0.5f}, {0}), 0.0);
}

TEST(AccuracyTest, HalfThresholdCounts) {
  EXPECT_DOUBLE_EQ(Accuracy({0.9f, 0.2f, 0.7f, 0.1f}, {1, 0, 0, 1}), 0.5);
}

TEST(AggregateTest, MeanAndSampleStddev) {
  const RunStats stats = Aggregate({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 1.0);
  EXPECT_EQ(stats.runs, 3);
}

TEST(AggregateTest, SingleRunHasZeroSpread) {
  const RunStats stats = Aggregate({0.5});
  EXPECT_DOUBLE_EQ(stats.mean, 0.5);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

TEST(FormatStatsTest, PaperStyle) {
  EXPECT_EQ(FormatStats({0.92113, 0.00402, 3}), "0.9211 ± 0.0040");
}

// Parameterized: AP/ROC bounds hold across random instances.
class MetricBoundsSweep : public ::testing::TestWithParam<int> {};

TEST_P(MetricBoundsSweep, WithinUnitInterval) {
  Rng rng(GetParam());
  std::vector<float> scores;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(static_cast<float>(rng.Uniform()));
    labels.push_back(rng.Bernoulli(0.4) ? 1 : 0);
  }
  labels[0] = 1;  // guarantee at least one positive
  const double ap = AveragePrecision(scores, labels);
  const double auc = RocAuc(scores, labels);
  const double f1 = BestF1(scores, labels);
  for (double v : {ap, auc, f1}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricBoundsSweep,
                         ::testing::Range(100, 110));

// ----------------------------------------------------------------- report

TEST(ResultTableTest, MarkdownHasHeaderSeparatorRows) {
  ResultTable table("My title", {"a", "b"});
  table.AddRow({"1", "22"});
  const std::string md = table.ToMarkdown();
  EXPECT_NE(md.find("### My title"), std::string::npos);
  EXPECT_NE(md.find("| a"), std::string::npos);
  EXPECT_NE(md.find("|---"), std::string::npos);
  EXPECT_NE(md.find("| 22"), std::string::npos);
}

TEST(ResultTableTest, CsvEscapesCommas) {
  ResultTable table("t", {"x"});
  table.AddRow({"a,b"});
  EXPECT_NE(table.ToCsv().find("\"a,b\""), std::string::npos);
}

TEST(ResultTableTest, WritesFile) {
  ResultTable table("t", {"x"});
  table.AddRow({"1"});
  const std::string path = ::testing::TempDir() + "/adamel_table.csv";
  EXPECT_TRUE(table.WriteCsv(path).ok());
}

TEST(EnsureDirectoryTest, CreatesNested) {
  const std::string dir = ::testing::TempDir() + "/adamel/a/b";
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  EXPECT_TRUE(EnsureDirectory(dir).ok());  // idempotent
}

// ------------------------------------------------------------------ t-SNE

std::vector<std::vector<float>> TwoClusters(int per_cluster, Rng* rng) {
  std::vector<std::vector<float>> points;
  for (int i = 0; i < 2 * per_cluster; ++i) {
    const float center = i < per_cluster ? -5.0f : 5.0f;
    std::vector<float> p(4);
    for (float& v : p) {
      v = center + static_cast<float>(rng->Normal(0.0, 0.3));
    }
    points.push_back(std::move(p));
  }
  return points;
}

TEST(TsneTest, OutputShapeAndFiniteness) {
  Rng rng(2);
  const auto points = TwoClusters(15, &rng);
  TsneOptions options;
  options.iterations = 120;
  const auto coords = Tsne(points, options);
  ASSERT_EQ(coords.size(), points.size());
  for (const auto& c : coords) {
    ASSERT_EQ(c.size(), 2u);
    EXPECT_TRUE(std::isfinite(c[0]) && std::isfinite(c[1]));
  }
}

TEST(TsneTest, SeparatesWellSeparatedClusters) {
  Rng rng(3);
  const int per_cluster = 20;
  const auto points = TwoClusters(per_cluster, &rng);
  TsneOptions options;
  options.iterations = 250;
  const auto coords = Tsne(points, options);
  // Mean intra-cluster distance should be far below inter-cluster distance.
  auto dist = [&](int i, int j) {
    const double dx = coords[i][0] - coords[j][0];
    const double dy = coords[i][1] - coords[j][1];
    return std::sqrt(dx * dx + dy * dy);
  };
  double intra = 0.0;
  double inter = 0.0;
  int intra_n = 0;
  int inter_n = 0;
  for (size_t i = 0; i < coords.size(); ++i) {
    for (size_t j = i + 1; j < coords.size(); ++j) {
      const bool same =
          (i < per_cluster) == (j < static_cast<size_t>(per_cluster));
      (same ? intra : inter) += dist(static_cast<int>(i),
                                     static_cast<int>(j));
      ++(same ? intra_n : inter_n);
    }
  }
  EXPECT_LT(intra / intra_n, 0.5 * inter / inter_n);
}

TEST(DomainAlignmentTest, SeparatedDomainsScoreHigh) {
  Rng rng(4);
  const auto points = TwoClusters(20, &rng);
  std::vector<int> domains(40, 0);
  for (int i = 20; i < 40; ++i) {
    domains[i] = 1;
  }
  EXPECT_GT(DomainAlignmentScore(points, domains, 5), 0.95);
}

TEST(DomainAlignmentTest, MixedDomainsScoreNearHalf) {
  Rng rng(5);
  std::vector<std::vector<float>> points;
  std::vector<int> domains;
  for (int i = 0; i < 60; ++i) {
    points.push_back({static_cast<float>(rng.Normal()),
                      static_cast<float>(rng.Normal())});
    domains.push_back(i % 2);
  }
  EXPECT_NEAR(DomainAlignmentScore(points, domains, 8), 0.5, 0.12);
}

}  // namespace
}  // namespace adamel::eval
