// Tests for the src/obs telemetry layer: metric semantics, registry
// find-or-create with stable pointers, exact timer/phase attribution under
// ScopedFakeClock, snapshot determinism of the JSON/CSV exporters, the
// FlatJsonParse reader, and concurrent mutation from the thread pool (the
// TSan CI job runs this binary specifically for the concurrency suite).
//
// The direct class APIs exist in both ADAMEL_TELEMETRY=ON and =OFF builds;
// only the macros compile out, so macro tests branch on kTelemetryEnabled.

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "obs/clock.h"
#include "obs/export.h"
#include "obs/telemetry.h"

namespace adamel {
namespace {

const obs::CounterSnapshot* FindCounter(const obs::TelemetrySnapshot& snapshot,
                                        const std::string& name) {
  for (const obs::CounterSnapshot& c : snapshot.counters) {
    if (c.name == name) {
      return &c;
    }
  }
  return nullptr;
}

const obs::SeriesSnapshot* FindSeries(const obs::TelemetrySnapshot& snapshot,
                                      const std::string& name) {
  for (const obs::SeriesSnapshot& s : snapshot.series) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

const obs::TimerSnapshot* FindTimer(const obs::TelemetrySnapshot& snapshot,
                                    const std::string& name) {
  for (const obs::TimerSnapshot& t : snapshot.timers) {
    if (t.name == name) {
      return &t;
    }
  }
  return nullptr;
}

// -- clock -------------------------------------------------------------------

TEST(ObsClock, RealClockIsMonotonic) {
  const int64_t first = obs::NowNanos();
  const int64_t second = obs::NowNanos();
  EXPECT_GE(second, first);
}

TEST(ObsClock, FakeClockControlsNowNanos) {
  obs::ScopedFakeClock clock;
  EXPECT_EQ(obs::NowNanos(), 0);
  clock.Advance(5);
  EXPECT_EQ(obs::NowNanos(), 5);
  clock.Advance(0);
  EXPECT_EQ(obs::NowNanos(), 5);
  clock.Set(1000);
  EXPECT_EQ(obs::NowNanos(), 1000);
  EXPECT_EQ(clock.now_ns(), 1000);
}

TEST(ObsClock, RealClockResumesAfterFakeScope) {
  {
    obs::ScopedFakeClock clock;
    clock.Set(42);
    EXPECT_EQ(obs::NowNanos(), 42);
  }
  // Back on the hardware clock: values are large and strictly advance past
  // any plausible fake value.
  EXPECT_GT(obs::NowNanos(), 42);
}

// -- metric primitives -------------------------------------------------------

TEST(ObsMetrics, CounterAddsAndResets) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Add(3);
  counter.Add(4);
  EXPECT_EQ(counter.value(), 7);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(ObsMetrics, GaugeKeepsLastValue) {
  obs::Gauge gauge;
  gauge.Set(0.25);
  gauge.Set(-3.5);
  EXPECT_EQ(gauge.value(), -3.5);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(ObsMetrics, SeriesAppendsInOrderAndCaps) {
  obs::Series series;
  series.Append(1.0);
  series.Append(2.0);
  series.Append(3.0);
  EXPECT_EQ(series.Values(), (std::vector<double>{1.0, 2.0, 3.0}));
  series.Reset();
  EXPECT_TRUE(series.Values().empty());

  // The length cap bounds a runaway loop; extra appends are dropped.
  for (size_t i = 0; i < obs::Series::kMaxValues + 10; ++i) {
    series.Append(static_cast<double>(i));
  }
  EXPECT_EQ(series.Values().size(), obs::Series::kMaxValues);
}

TEST(ObsMetrics, HistogramBucketsByUpperBound) {
  obs::Histogram histogram({1.0, 10.0, 100.0});
  histogram.Record(0.5);     // < 1       -> bucket 0
  histogram.Record(5.0);     // [1, 10)   -> bucket 1
  histogram.Record(10.0);    // == bound  -> next bucket (bounds exclusive)
  histogram.Record(50.0);    // [10, 100) -> bucket 2
  histogram.Record(1000.0);  // >= 100    -> +inf bucket
  EXPECT_EQ(histogram.bucket_count(0), 1);
  EXPECT_EQ(histogram.bucket_count(1), 1);
  EXPECT_EQ(histogram.bucket_count(2), 2);
  EXPECT_EQ(histogram.bucket_count(3), 1);
  EXPECT_EQ(histogram.total_count(), 5);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1065.5);
  histogram.Reset();
  EXPECT_EQ(histogram.total_count(), 0);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
}

TEST(ObsMetrics, DefaultLatencyBoundsAreAscending) {
  const std::vector<double>& bounds = obs::DefaultLatencyBoundsNs();
  ASSERT_FALSE(bounds.empty());
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  EXPECT_DOUBLE_EQ(bounds.front(), 1e3);
  EXPECT_DOUBLE_EQ(bounds.back(), 1e10);
}

TEST(ObsMetrics, FineLatencyBoundsAreAscendingGeometric) {
  const std::vector<double>& bounds = obs::FineLatencyBoundsNs();
  ASSERT_GT(bounds.size(), 80u);  // ~12 buckets per decade, 1us..10s
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  EXPECT_DOUBLE_EQ(bounds.front(), 1e3);
  EXPECT_GE(bounds.back(), 1e10 / 1.2);
  // Geometric: neighbor ratio is 2^(1/4) everywhere.
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_NEAR(bounds[i] / bounds[i - 1], std::pow(2.0, 0.25), 1e-9);
  }
}

TEST(ObsMetrics, HistogramPercentileInterpolatesWithinBucket) {
  obs::Histogram histogram({10.0, 20.0, 40.0});
  histogram.Record(5.0);     // bucket 0: [0, 10)
  histogram.Record(15.0);    // bucket 1: [10, 20)
  histogram.Record(15.0);    // bucket 1
  histogram.Record(100.0);   // +inf bucket
  const obs::HistogramSnapshot snapshot =
      obs::SnapshotHistogram("h", histogram);
  EXPECT_EQ(snapshot.count, 4);
  // rank 2 of 4 lands halfway through bucket [10, 20).
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(snapshot, 50.0), 15.0);
  // rank 1 is the full first bucket: its upper edge.
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(snapshot, 25.0), 10.0);
  // q=0 degenerates to the lower edge of the first occupied bucket.
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(snapshot, 0.0), 0.0);
  // The +inf bucket has no finite edge to interpolate toward; report the
  // largest finite bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(snapshot, 100.0), 40.0);
}

TEST(ObsMetrics, HistogramPercentileHandlesEmptyAndSkipsEmptyBuckets) {
  obs::Histogram histogram({10.0, 20.0, 40.0});
  EXPECT_DOUBLE_EQ(
      obs::HistogramPercentile(obs::SnapshotHistogram("h", histogram), 99.0),
      0.0);
  histogram.Record(30.0);  // only bucket [20, 40) is occupied
  const obs::HistogramSnapshot snapshot =
      obs::SnapshotHistogram("h", histogram);
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(snapshot, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(obs::HistogramPercentile(snapshot, 99.0), 39.8);
}

TEST(ObsMetrics, FineBoundsPercentileIsWithinGridError) {
  // The fine grid promises ~19% worst-case edge error; a burst of equal
  // 5 ms observations must read back within one bucket of the truth.
  obs::Histogram histogram(obs::FineLatencyBoundsNs());
  for (int i = 0; i < 10; ++i) {
    histogram.Record(5e6);
  }
  const obs::HistogramSnapshot snapshot =
      obs::SnapshotHistogram("h", histogram);
  for (const double q : {50.0, 95.0, 99.0}) {
    const double estimate = obs::HistogramPercentile(snapshot, q);
    EXPECT_GT(estimate, 5e6 / 1.2) << "q" << q;
    EXPECT_LT(estimate, 5e6 * 1.2) << "q" << q;
  }
}

TEST(ObsMetrics, TimerStatAggregatesAcrossRecords) {
  obs::TimerStat stat;
  stat.Record(100);
  stat.Record(700);
  stat.Record(200);
  EXPECT_EQ(stat.count(), 3);
  EXPECT_EQ(stat.total_ns(), 1000);
  EXPECT_EQ(stat.max_ns(), 700);
  stat.Reset();
  EXPECT_EQ(stat.count(), 0);
  EXPECT_EQ(stat.total_ns(), 0);
  EXPECT_EQ(stat.max_ns(), 0);
}

TEST(ObsMetrics, ScopedTimerRecordsExactFakeDurations) {
  obs::ScopedFakeClock clock;
  obs::TimerStat stat;
  {
    obs::ScopedTimer timer(&stat);
    clock.Advance(1234);
  }
  {
    obs::ScopedTimer timer(&stat);
    clock.Advance(66);
  }
  EXPECT_EQ(stat.count(), 2);
  EXPECT_EQ(stat.total_ns(), 1300);
  EXPECT_EQ(stat.max_ns(), 1234);
}

TEST(ObsMetrics, ThreadIndexIsStablePerThreadAndDistinctAcrossThreads) {
  const int main_index = obs::ThreadIndex();
  EXPECT_EQ(obs::ThreadIndex(), main_index);
  int other_index = main_index;
  std::thread worker([&other_index] { other_index = obs::ThreadIndex(); });
  worker.join();
  EXPECT_NE(other_index, main_index);
}

// -- registry ----------------------------------------------------------------

TEST(ObsRegistry, FindOrCreateReturnsStablePointers) {
  obs::Registry& registry = obs::Registry::Global();
  obs::Counter* counter = registry.GetCounter("obs_test.registry.counter");
  EXPECT_EQ(registry.GetCounter("obs_test.registry.counter"), counter);
  EXPECT_NE(registry.GetCounter("obs_test.registry.other"), counter);

  counter->Add(7);
  registry.ResetAllForTest();
  // Reset zeroes in place: the cached pointer stays valid and re-lookup
  // finds the same object (the macro pointer-caching contract).
  EXPECT_EQ(counter->value(), 0);
  EXPECT_EQ(registry.GetCounter("obs_test.registry.counter"), counter);
}

TEST(ObsRegistry, HistogramBoundsApplyOnFirstCreationOnly) {
  obs::Registry& registry = obs::Registry::Global();
  obs::Histogram* histogram =
      registry.GetHistogram("obs_test.registry.hist", {1.0, 2.0});
  obs::Histogram* again =
      registry.GetHistogram("obs_test.registry.hist", {5.0});
  EXPECT_EQ(histogram, again);
  EXPECT_EQ(again->upper_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(ObsRegistry, SnapshotIsNameSortedAndDetached) {
  obs::Registry& registry = obs::Registry::Global();
  registry.ResetAllForTest();
  registry.GetCounter("obs_test.sort.b")->Add(2);
  registry.GetCounter("obs_test.sort.a")->Add(1);
  const obs::TelemetrySnapshot snapshot = obs::CaptureSnapshot();
  EXPECT_EQ(snapshot.enabled, obs::kTelemetryEnabled);
  EXPECT_TRUE(std::is_sorted(
      snapshot.counters.begin(), snapshot.counters.end(),
      [](const obs::CounterSnapshot& x, const obs::CounterSnapshot& y) {
        return x.name < y.name;
      }));
  ASSERT_NE(FindCounter(snapshot, "obs_test.sort.a"), nullptr);
  EXPECT_EQ(FindCounter(snapshot, "obs_test.sort.a")->value, 1);
  EXPECT_EQ(FindCounter(snapshot, "obs_test.sort.b")->value, 2);

  // Snapshots hold plain values: later mutation does not alter them.
  registry.GetCounter("obs_test.sort.a")->Add(100);
  EXPECT_EQ(FindCounter(snapshot, "obs_test.sort.a")->value, 1);

  // Every phase appears in the snapshot, in enum order.
  ASSERT_EQ(snapshot.phases.size(), static_cast<size_t>(obs::kPhaseCount));
  EXPECT_EQ(snapshot.phases.front().name, "featurize");
  EXPECT_EQ(snapshot.phases.back().name, "checkpoint");
}

// -- phase profiler ----------------------------------------------------------

TEST(ObsPhases, PhaseNamesAreStable) {
  EXPECT_STREQ(obs::PhaseName(obs::Phase::kFeaturize), "featurize");
  EXPECT_STREQ(obs::PhaseName(obs::Phase::kEmbed), "embed");
  EXPECT_STREQ(obs::PhaseName(obs::Phase::kForward), "forward");
  EXPECT_STREQ(obs::PhaseName(obs::Phase::kBackward), "backward");
  EXPECT_STREQ(obs::PhaseName(obs::Phase::kOptimizer), "optimizer");
  EXPECT_STREQ(obs::PhaseName(obs::Phase::kEval), "eval");
  EXPECT_STREQ(obs::PhaseName(obs::Phase::kCheckpoint), "checkpoint");
}

TEST(ObsPhases, NestedScopesAttributeExclusively) {
  obs::ScopedFakeClock clock;
  obs::PhaseProfiler::Global().Reset();
  {
    obs::PhaseScope outer(obs::Phase::kForward);
    clock.Advance(100);
    {
      obs::PhaseScope inner(obs::Phase::kBackward);
      clock.Advance(30);
    }
    clock.Advance(50);
  }
  const std::array<int64_t, obs::kPhaseCount> totals =
      obs::PhaseProfiler::Global().ExclusiveNs();
  // The inner scope's 30ns is charged to backward only; forward gets the
  // 100ns before and 50ns after, never the nested span.
  EXPECT_EQ(totals[static_cast<int>(obs::Phase::kForward)], 150);
  EXPECT_EQ(totals[static_cast<int>(obs::Phase::kBackward)], 30);
  EXPECT_EQ(totals[static_cast<int>(obs::Phase::kOptimizer)], 0);
}

TEST(ObsPhases, ReenteringSamePhaseAccumulates) {
  obs::ScopedFakeClock clock;
  obs::PhaseProfiler::Global().Reset();
  for (int i = 0; i < 3; ++i) {
    obs::PhaseScope scope(obs::Phase::kEval);
    clock.Advance(10);
  }
  EXPECT_EQ(obs::PhaseProfiler::Global()
                .ExclusiveNs()[static_cast<int>(obs::Phase::kEval)],
            30);
}

TEST(ObsPhases, ScopesInsideParallelForAreIgnored) {
  obs::PhaseProfiler::Global().Reset();
  std::atomic<bool> saw_region{false};
  EXPECT_FALSE(InParallelRegion());
  ParallelFor(0, 64, 8, [&saw_region](int64_t lo, int64_t hi) {
    if (InParallelRegion()) {
      saw_region.store(true, std::memory_order_relaxed);
    }
    for (int64_t i = lo; i < hi; ++i) {
      obs::PhaseScope scope(obs::Phase::kEval);
    }
  });
  EXPECT_TRUE(saw_region.load());
  EXPECT_FALSE(InParallelRegion());
  // Pool workers (and the participating caller) run concurrently with the
  // orchestrating thread, so their scopes must not charge wall time.
  EXPECT_EQ(obs::PhaseProfiler::Global()
                .ExclusiveNs()[static_cast<int>(obs::Phase::kEval)],
            0);
}

// -- macros ------------------------------------------------------------------

TEST(ObsMacros, RecordIntoRegistryWhenEnabled) {
  obs::Registry::Global().ResetAllForTest();
  ADAMEL_COUNTER_ADD("obs_test.macro.counter", 2);
  ADAMEL_COUNTER_ADD("obs_test.macro.counter", 3);
  ADAMEL_GAUGE_SET("obs_test.macro.gauge", 1.5);
  ADAMEL_SERIES_APPEND("obs_test.macro.series", 0.25);
  ADAMEL_HISTOGRAM_RECORD("obs_test.macro.hist", 2e3);
  {
    ADAMEL_TRACE_SCOPE("obs_test.macro.trace");
  }
  const obs::TelemetrySnapshot snapshot = obs::CaptureSnapshot();
  if constexpr (obs::kTelemetryEnabled) {
    ASSERT_NE(FindCounter(snapshot, "obs_test.macro.counter"), nullptr);
    EXPECT_EQ(FindCounter(snapshot, "obs_test.macro.counter")->value, 5);
    ASSERT_NE(FindSeries(snapshot, "obs_test.macro.series"), nullptr);
    EXPECT_EQ(FindSeries(snapshot, "obs_test.macro.series")->values,
              (std::vector<double>{0.25}));
    ASSERT_NE(FindTimer(snapshot, "obs_test.macro.trace"), nullptr);
    EXPECT_EQ(FindTimer(snapshot, "obs_test.macro.trace")->count, 1);
  } else {
    EXPECT_EQ(FindCounter(snapshot, "obs_test.macro.counter"), nullptr);
    EXPECT_EQ(FindSeries(snapshot, "obs_test.macro.series"), nullptr);
    EXPECT_EQ(FindTimer(snapshot, "obs_test.macro.trace"), nullptr);
  }
}

TEST(ObsMacros, OffBuildDoesNotEvaluateArguments) {
  // OFF-mode macros expand to ((void)0): side effects in the argument list
  // must vanish, which is why instrumentation only passes expressions the
  // surrounding code does not depend on.
  int evaluations = 0;
  auto bump = [&evaluations] {
    ++evaluations;
    return int64_t{1};
  };
  (void)bump;  // in OFF builds the macro below never references it
  ADAMEL_COUNTER_ADD("obs_test.macro.arg_eval", bump());
  EXPECT_EQ(evaluations, obs::kTelemetryEnabled ? 1 : 0);
}

// -- export ------------------------------------------------------------------

TEST(ObsExport, JsonIsDeterministicAndFlatParsesBack) {
  obs::Registry& registry = obs::Registry::Global();
  registry.ResetAllForTest();
  registry.GetCounter("obs_test.json.counter")->Add(3);
  registry.GetGauge("obs_test.json.gauge")->Set(0.25);
  registry.GetSeries("obs_test.json.series")->Append(0.5);
  registry.GetSeries("obs_test.json.series")->Append(1.5);
  registry.GetTimer("obs_test.json.timer")->Record(10);

  const obs::TelemetrySnapshot first = obs::CaptureSnapshot();
  const obs::TelemetrySnapshot second = obs::CaptureSnapshot();
  EXPECT_EQ(obs::ToJson(first), obs::ToJson(second));
  EXPECT_EQ(obs::ToCsv(first), obs::ToCsv(second));

  const StatusOr<std::map<std::string, double>> flat =
      obs::FlatJsonParse(obs::ToJson(first));
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  const std::map<std::string, double>& values = flat.value();
  EXPECT_EQ(values.at("enabled"), obs::kTelemetryEnabled ? 1.0 : 0.0);
  EXPECT_EQ(values.at("counters/obs_test.json.counter"), 3.0);
  EXPECT_EQ(values.at("gauges/obs_test.json.gauge"), 0.25);
  EXPECT_EQ(values.at("series/obs_test.json.series/0"), 0.5);
  EXPECT_EQ(values.at("series/obs_test.json.series/1"), 1.5);
  EXPECT_EQ(values.at("timers/obs_test.json.timer/count"), 1.0);
  EXPECT_EQ(values.at("timers/obs_test.json.timer/total_ns"), 10.0);
  EXPECT_EQ(values.count("phases/featurize"), 1u);
}

TEST(ObsExport, JsonEmitsCallerWallTimeAlongsidePhases) {
  const obs::TelemetrySnapshot snapshot = obs::CaptureSnapshot();
  const std::string with_wall = obs::ToJson(snapshot, 2, 12345);
  EXPECT_NE(with_wall.find("\"wall_ns\": 12345"), std::string::npos);
  const std::string without_wall = obs::ToJson(snapshot);
  EXPECT_EQ(without_wall.find("wall_ns"), std::string::npos);
}

TEST(ObsExport, CsvHasHeaderAndMetricRows) {
  obs::Registry& registry = obs::Registry::Global();
  registry.ResetAllForTest();
  registry.GetCounter("obs_test.csv.counter")->Add(9);
  const std::string csv = obs::ToCsv(obs::CaptureSnapshot());
  EXPECT_EQ(csv.rfind("kind,name,field,value\n", 0), 0u);
  EXPECT_NE(csv.find("counter,obs_test.csv.counter,,9"), std::string::npos);
  EXPECT_NE(csv.find("phase,featurize,exclusive_ns,"), std::string::npos);
}

TEST(ObsExport, FlatJsonParseHandlesNestingBoolsAndNulls) {
  const StatusOr<std::map<std::string, double>> flat = obs::FlatJsonParse(
      R"({"a": 1, "b": {"c": [2, -3.5e1], "d": true, "e": null}, "f": false})");
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  const std::map<std::string, double>& values = flat.value();
  EXPECT_EQ(values.at("a"), 1.0);
  EXPECT_EQ(values.at("b/c/0"), 2.0);
  EXPECT_EQ(values.at("b/c/1"), -35.0);
  EXPECT_EQ(values.at("b/d"), 1.0);
  EXPECT_EQ(values.at("f"), 0.0);
  EXPECT_EQ(values.count("b/e"), 0u);  // nulls are skipped
}

TEST(ObsExport, FlatJsonParseRejectsMalformedInput) {
  EXPECT_FALSE(obs::FlatJsonParse("").ok());
  EXPECT_FALSE(obs::FlatJsonParse("{").ok());
  EXPECT_FALSE(obs::FlatJsonParse("{\"a\": }").ok());
  EXPECT_FALSE(obs::FlatJsonParse("{\"a\": \"string\"}").ok());
  EXPECT_FALSE(obs::FlatJsonParse("{\"a\": 1, \"a\": 2}").ok());
  EXPECT_FALSE(obs::FlatJsonParse("{} trailing").ok());
  EXPECT_FALSE(obs::FlatJsonParse("{\"a\": [1,]}").ok());
}

// -- concurrency (the TSan CI job hammers these) -----------------------------

TEST(ObsConcurrency, MetricsAreExactUnderParallelMutation) {
  obs::Registry& registry = obs::Registry::Global();
  registry.ResetAllForTest();
  obs::Counter* counter = registry.GetCounter("obs_test.conc.counter");
  obs::TimerStat* timer = registry.GetTimer("obs_test.conc.timer");
  obs::Histogram* histogram = registry.GetHistogram(
      "obs_test.conc.hist", obs::DefaultLatencyBoundsNs());
  obs::Gauge* gauge = registry.GetGauge("obs_test.conc.gauge");

  constexpr int64_t kIters = 50000;
  ParallelFor(0, kIters, 64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      counter->Add(1);
      timer->Record(i % 1000);
      histogram->Record(static_cast<double>(i % 7));
      gauge->Set(static_cast<double>(i));
      // Phase scopes no-op inside the pool but must still be race-free.
      obs::PhaseScope scope(obs::Phase::kForward);
    }
  });
  EXPECT_EQ(counter->value(), kIters);
  EXPECT_EQ(timer->count(), kIters);
  EXPECT_EQ(timer->max_ns(), 999);
  EXPECT_EQ(histogram->total_count(), kIters);
}

TEST(ObsConcurrency, SnapshotsRaceSafelyWithWriters) {
  obs::Registry& registry = obs::Registry::Global();
  registry.ResetAllForTest();
  obs::Counter* counter = registry.GetCounter("obs_test.conc.snap.counter");
  obs::Series* series = registry.GetSeries("obs_test.conc.snap.series");

  std::atomic<bool> stop{false};
  std::thread reader([&stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const obs::TelemetrySnapshot snapshot = obs::CaptureSnapshot();
      const std::string json = obs::ToJson(snapshot, 0);
      ASSERT_FALSE(json.empty());
    }
  });
  constexpr int64_t kIters = 20000;
  ParallelFor(0, kIters, 64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      counter->Add(1);
      if (i % 100 == 0) {
        series->Append(static_cast<double>(i));
      }
    }
  });
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(counter->value(), kIters);
  EXPECT_EQ(series->Values().size(), static_cast<size_t>(kIters / 100));
}

TEST(ObsConcurrency, RegistryLookupsRaceSafely) {
  obs::Registry::Global().ResetAllForTest();
  // Concurrent find-or-create on overlapping names must agree on one object
  // per name.
  std::vector<obs::Counter*> seen(64, nullptr);
  ParallelFor(0, 64, 1, [&seen](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const std::string name =
          "obs_test.conc.lookup." + std::to_string(i % 4);
      seen[static_cast<size_t>(i)] =
          obs::Registry::Global().GetCounter(name);
      seen[static_cast<size_t>(i)]->Add(1);
    }
  });
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)],
              seen[static_cast<size_t>(i % 4)]);
  }
  EXPECT_EQ(
      obs::Registry::Global().GetCounter("obs_test.conc.lookup.0")->value(),
      16);
}

}  // namespace
}  // namespace adamel
