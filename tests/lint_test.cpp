// Fixture tests for adamel_lint: one deliberately-bad source per rule, plus
// suppression handling and the Status-name collector. These lint in-memory
// strings through the same LintSource() entry point the CLI uses, so a rule
// regression fails here before it fails on the real tree.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/lint.h"

namespace adamel::lint {
namespace {

// Lints `contents` as library code (src/) with no expected include guard.
std::vector<Finding> LintLibrary(const std::string& contents) {
  Options options;
  options.library_code = true;
  std::set<std::string> status_names = {"WriteFile", "EnsureDirectory"};
  return LintSource("src/fake/fixture.cc", contents, options, status_names);
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const Finding& f : findings) {
    rules.push_back(f.rule);
  }
  return rules;
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  const std::vector<std::string> rules = Rules(findings);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

TEST(LintTest, CleanSourceHasNoFindings) {
  const std::string source = R"cpp(
#include <vector>
int Sum(const std::vector<int>& values) {
  int total = 0;
  for (int v : values) total += v;
  return total;
}
)cpp";
  EXPECT_TRUE(LintLibrary(source).empty());
}

// -- nondeterminism ----------------------------------------------------------

TEST(LintTest, FlagsRandCall) {
  const auto findings = LintLibrary("int f() { return rand() % 10; }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "nondeterminism");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintTest, FlagsRandomDevice) {
  const auto findings =
      LintLibrary("#include <random>\nstd::random_device rd;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "nondeterminism");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintTest, FlagsTimeCall) {
  EXPECT_TRUE(HasRule(LintLibrary("long f() { return time(nullptr); }\n"),
                      "nondeterminism"));
}

// -- telemetry-clock ----------------------------------------------------------

TEST(LintTest, FlagsDirectClockNow) {
  EXPECT_TRUE(HasRule(
      LintLibrary("auto f() { return std::chrono::steady_clock::now(); }\n"),
      "telemetry-clock"));
  EXPECT_TRUE(HasRule(
      LintLibrary(
          "auto f() { return std::chrono::system_clock::now(); }\n"),
      "telemetry-clock"));
}

TEST(LintTest, ObsClockImplementationIsExempt) {
  // src/obs/clock.cc is the one translation unit allowed to read the chrono
  // clocks directly; everything else must go through obs::NowNanos().
  Options options;
  options.library_code = true;
  options.obs_clock_allowed = true;
  const std::set<std::string> no_names;
  const auto findings = LintSource(
      "src/obs/clock.cc",
      "auto f() { return std::chrono::steady_clock::now(); }\n", options,
      no_names);
  EXPECT_TRUE(findings.empty());

  // The exemption only covers the clock rule — rand() still fires.
  const auto rand_findings = LintSource(
      "src/obs/clock.cc", "int f() { return rand(); }\n", options, no_names);
  EXPECT_TRUE(HasRule(rand_findings, "nondeterminism"));
}

TEST(LintTest, DoesNotFlagIdentifiersContainingRand) {
  // `rand` must match as a call, not as a substring of another identifier.
  const std::string source = R"cpp(
int operand = 3;
int Randomize(int strand) { return operand + strand; }
)cpp";
  EXPECT_TRUE(LintLibrary(source).empty());
}

// -- unchecked-status / void-cast-status -------------------------------------

TEST(LintTest, FlagsDiscardedStatusCall) {
  const auto findings = LintLibrary("void f() { WriteFile(\"x\"); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unchecked-status");
}

TEST(LintTest, FlagsDiscardedMemberStatusCall) {
  const auto findings =
      LintLibrary("void f(Writer& w) { w.WriteFile(\"x\"); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unchecked-status");
}

TEST(LintTest, FlagsVoidCastStatus) {
  // (void) silences [[nodiscard]], so the linter bans it in favor of
  // ADAMEL_IGNORE_STATUS(expr, reason).
  const auto findings =
      LintLibrary("void f() { (void)WriteFile(\"x\"); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "void-cast-status");
}

TEST(LintTest, AcceptsConsumedStatusCall) {
  const std::string source = R"cpp(
Status f() { return WriteFile("x"); }
void g() {
  const Status status = WriteFile("y");
  if (!status.ok()) return;
}
)cpp";
  EXPECT_TRUE(LintLibrary(source).empty());
}

// -- raw-new / cout-debug (library-only rules) -------------------------------

TEST(LintTest, FlagsRawNewInLibraryCode) {
  const auto findings = LintLibrary("int* f() { return new int(3); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-new");
}

TEST(LintTest, FlagsMallocInLibraryCode) {
  EXPECT_TRUE(
      HasRule(LintLibrary("void* f() { return malloc(8); }\n"), "raw-new"));
}

TEST(LintTest, FlagsCoutInLibraryCode) {
  EXPECT_TRUE(HasRule(
      LintLibrary("#include <iostream>\nvoid f() { std::cout << 1; }\n"),
      "cout-debug"));
  EXPECT_TRUE(
      HasRule(LintLibrary("void f() { printf(\"x\"); }\n"), "cout-debug"));
}

TEST(LintTest, LibraryRulesAreOffOutsideSrc) {
  Options options;
  options.library_code = false;  // bench/ and examples/ may allocate + print
  const std::set<std::string> no_names;
  const auto findings = LintSource(
      "bench/fixture.cpp",
      "#include <iostream>\nint* f() { std::cout << 1; return new int; }\n",
      options, no_names);
  EXPECT_TRUE(findings.empty());
}

// -- include-guard -----------------------------------------------------------

// -- raw-intrinsic -----------------------------------------------------------

TEST(LintTest, FlagsIntrinsicCallInLibraryCode) {
  const auto findings = LintLibrary(
      "float Sum(__m128 v) { return _mm_cvtss_f32(_mm_hadd_ps(v, v)); }\n");
  ASSERT_FALSE(findings.empty());
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "raw-intrinsic");
  }
}

TEST(LintTest, FlagsIntrinsicsHeaderInclude) {
  const auto findings = LintLibrary("#include <immintrin.h>\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-intrinsic");
  const auto x86 = LintLibrary("#include <x86intrin.h>\n");
  ASSERT_EQ(x86.size(), 1u);
  EXPECT_EQ(x86[0].rule, "raw-intrinsic");
}

TEST(LintTest, KernelsDirectoryMayUseIntrinsics) {
  Options options;
  options.library_code = true;
  options.intrinsics_allowed = true;  // src/nn/kernels/ in LintTree
  const auto findings = LintSource(
      "src/nn/kernels/kernels_sse.cc",
      "#include <immintrin.h>\n__m128 Zero() { return _mm_setzero_ps(); }\n",
      options, {});
  EXPECT_TRUE(findings.empty());
}

TEST(LintTest, IntrinsicRuleIsOffOutsideLibraryCode) {
  Options options;
  options.library_code = false;  // bench/ may use __rdtsc etc.
  const auto findings = LintSource(
      "bench/bench_kernels.cpp", "#include <x86intrin.h>\n", options, {});
  EXPECT_TRUE(findings.empty());
}

TEST(LintTest, DoesNotFlagOrdinaryUnderscoreIdentifiers) {
  // `_mm`/`__m` prefix matching must not catch unrelated names.
  EXPECT_TRUE(LintLibrary("int member_mm = 0; int m__m = member_mm;\n")
                  .empty());
}

TEST(LintTest, ExpectedGuardStripsSrcPrefix) {
  EXPECT_EQ(ExpectedIncludeGuard("src/nn/tensor.h"), "ADAMEL_NN_TENSOR_H_");
  EXPECT_EQ(ExpectedIncludeGuard("bench/harness.h"),
            "ADAMEL_BENCH_HARNESS_H_");
  EXPECT_EQ(ExpectedIncludeGuard("tools/lint/lint.h"),
            "ADAMEL_TOOLS_LINT_LINT_H_");
}

TEST(LintTest, FlagsWrongIncludeGuard) {
  Options options;
  options.library_code = true;
  options.expected_guard = "ADAMEL_FAKE_FIXTURE_H_";
  const std::set<std::string> no_names;
  const std::string wrong = R"cpp(#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H
#endif
)cpp";
  const auto findings =
      LintSource("src/fake/fixture.h", wrong, options, no_names);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");

  const std::string right = R"cpp(#ifndef ADAMEL_FAKE_FIXTURE_H_
#define ADAMEL_FAKE_FIXTURE_H_
#endif
)cpp";
  EXPECT_TRUE(
      LintSource("src/fake/fixture.h", right, options, no_names).empty());
}

// -- banned-identifier -------------------------------------------------------

TEST(LintTest, FlagsBannedIdentifiers) {
  EXPECT_TRUE(HasRule(
      LintLibrary("void f(char* d, const char* s) { strcpy(d, s); }\n"),
      "banned-identifier"));
  EXPECT_TRUE(HasRule(
      LintLibrary("void f(char* b) { sprintf(b, \"x\"); }\n"),
      "banned-identifier"));
}

// -- raw-index-io ------------------------------------------------------------

TEST(LintTest, FlagsRawFileStreamsInLibraryCode) {
  EXPECT_TRUE(HasRule(
      LintLibrary("void f() { std::ofstream out(\"index.bin\"); }\n"),
      "raw-index-io"));
  EXPECT_TRUE(HasRule(
      LintLibrary("void f() { std::ifstream in(\"index.bin\"); }\n"),
      "raw-index-io"));
  EXPECT_TRUE(HasRule(LintLibrary("#include <fstream>\n"), "raw-index-io"));
  EXPECT_TRUE(HasRule(
      LintLibrary("void f() { fopen(\"index.bin\", \"wb\"); }\n"),
      "raw-index-io"));
}

TEST(LintTest, RawFileIoAllowedInSanctionedImplementations) {
  // The checkpoint container itself (src/nn/serialize*) and the other
  // sanctioned low-level IO files carry raw_file_io_allowed; the rule must
  // stay quiet there but every other rule still applies.
  Options options;
  options.library_code = true;
  options.raw_file_io_allowed = true;
  const std::set<std::string> no_names;
  EXPECT_TRUE(LintSource("src/nn/serialize.cc",
                         "void f() { std::ifstream in(\"ckpt\"); }\n", options,
                         no_names)
                  .empty());
  EXPECT_TRUE(HasRule(LintSource("src/nn/serialize.cc",
                                 "int f() { return rand(); }\n", options,
                                 no_names),
                      "nondeterminism"));
}

TEST(LintTest, RawFileIoNotFlaggedOutsideLibraryCode) {
  // Benches and examples may write ad-hoc files (e.g. BENCH_*.json).
  Options options;
  const std::set<std::string> no_names;
  EXPECT_TRUE(LintSource("bench/bench_fixture.cpp",
                         "void f() { fopen(\"out.json\", \"w\"); }\n", options,
                         no_names)
                  .empty());
}

TEST(LintTest, RawFileIoIsSuppressible) {
  const auto findings = LintLibrary(
      "// adamel-lint: allow-next-line(raw-index-io) -- fixture\n"
      "void f() { std::ofstream out(\"x\"); }\n");
  EXPECT_TRUE(findings.empty());
}

// -- suppressions ------------------------------------------------------------

TEST(LintTest, AllowSuppressesOnSameLine) {
  const auto findings = LintLibrary(
      "int f() { return rand(); }  "
      "// adamel-lint: allow(nondeterminism) -- fixture\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintTest, AllowNextLineSuppressesFollowingLine) {
  const auto findings = LintLibrary(
      "// adamel-lint: allow-next-line(raw-new) -- fixture\n"
      "int* f() { return new int(3); }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintTest, SuppressionOnlyCoversNamedRule) {
  // allow(raw-new) does not excuse the rand() on the same line.
  const auto findings = LintLibrary(
      "int f() { return rand(); }  // adamel-lint: allow(raw-new)\n");
  EXPECT_TRUE(HasRule(findings, "nondeterminism"));
}

TEST(LintTest, UnknownSuppressedRuleIsItselfAFinding) {
  const auto findings =
      LintLibrary("int x = 0;  // adamel-lint: allow(no-such-rule)\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "bad-suppression");
}

// -- raw-mutex ----------------------------------------------------------------

TEST(LintTest, FlagsRawStdMutex) {
  const auto findings = LintLibrary(
      "#include <mutex>\n"
      "std::mutex mu;\n"
      "void f() { std::lock_guard<std::mutex> lock(mu); }\n");
  ASSERT_FALSE(findings.empty());
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "raw-mutex");
  }
  // Both the include and each std-qualified use are reported.
  EXPECT_GE(findings.size(), 3u);
}

TEST(LintTest, FlagsRawConditionVariableAndUniqueLock) {
  EXPECT_TRUE(HasRule(LintLibrary("std::condition_variable cv;\n"),
                      "raw-mutex"));
  EXPECT_TRUE(HasRule(
      LintLibrary("void f(std::unique_lock<int>& l) { (void)l; }\n"),
      "raw-mutex"));
  EXPECT_TRUE(HasRule(LintLibrary("std::shared_mutex smu;\n"), "raw-mutex"));
}

TEST(LintTest, AnnotatedWrapperTypesPassRawMutex) {
  // The adamel wrappers are spelled without std:: qualification, so code on
  // the wrappers is clean even though the type names overlap.
  const std::string source = R"cpp(
#include "common/mutex.h"
class Counter {
 public:
  void Add(int d) {
    MutexLock lock(mutex_);
    value_ += d;
  }
 private:
  Mutex mutex_;
  int value_ ADAMEL_GUARDED_BY(mutex_) = 0;
};
)cpp";
  EXPECT_TRUE(LintLibrary(source).empty());
}

TEST(LintTest, CommonDirectoryMayUseRawMutex) {
  // src/common/mutex.h wraps std::mutex; the option LintTree sets for
  // src/common/ turns the rule (and the annotation rule) off there.
  Options options;
  options.library_code = true;
  options.raw_mutex_allowed = true;
  const auto findings = LintSource(
      "src/common/mutex.h",
      "#include <mutex>\nclass M { std::mutex mu_; };\n", options, {});
  EXPECT_TRUE(findings.empty());
}

TEST(LintTest, RawMutexIsSuppressible) {
  const auto findings = LintLibrary(
      "// adamel-lint: allow-next-line(raw-mutex) -- interop fixture\n"
      "std::mutex mu;\n");
  EXPECT_TRUE(findings.empty());
}

// -- unannotated-guarded-member ----------------------------------------------

TEST(LintTest, FlagsUnannotatedMemberNextToMutex) {
  const std::string source = R"cpp(
#include "common/mutex.h"
class Cache {
 private:
  Mutex mutex_;
  int hits_ ADAMEL_GUARDED_BY(mutex_) = 0;
  std::vector<int> entries_;
};
)cpp";
  const auto findings = LintLibrary(source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unannotated-guarded-member");
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_NE(findings[0].message.find("entries_"), std::string::npos);
}

TEST(LintTest, FullyAnnotatedClassPasses) {
  const std::string source = R"cpp(
#include "common/mutex.h"
class Cache {
 public:
  int hits() const {
    MutexLock lock(mutex_);
    return hits_;
  }
 private:
  mutable Mutex mutex_;
  CondVar cv_;
  int hits_ ADAMEL_GUARDED_BY(mutex_) = 0;
  std::vector<int> entries_ ADAMEL_GUARDED_BY(mutex_);
  std::atomic<int> epoch_{0};
  std::vector<std::thread> workers_;
  static constexpr int kShards = 4;
};
)cpp";
  EXPECT_TRUE(LintLibrary(source).empty());
}

TEST(LintTest, MutexFreeClassNeedsNoAnnotations) {
  const std::string source = R"cpp(
class Point {
 public:
  int x = 0;
  int y = 0;
};
)cpp";
  EXPECT_TRUE(LintLibrary(source).empty());
}

TEST(LintTest, UnannotatedGuardedMemberIsSuppressible) {
  const std::string source = R"cpp(
#include "common/mutex.h"
struct Shard {
  Mutex mutex;
  // adamel-lint: allow-next-line(unannotated-guarded-member) -- owned by init
  std::vector<int> table;
};
)cpp";
  EXPECT_TRUE(LintLibrary(source).empty());
}

// -- detached-thread ----------------------------------------------------------

TEST(LintTest, FlagsThreadDetach) {
  const auto findings = LintLibrary(
      "void f(std::thread& t) { t.detach(); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "detached-thread");
  EXPECT_TRUE(HasRule(
      LintLibrary("void f(std::thread* t) { t->detach(); }\n"),
      "detached-thread"));
}

TEST(LintTest, JoinAndDetachIdentifierAreFine) {
  EXPECT_TRUE(LintLibrary("void f(std::thread& t) { t.join(); }\n").empty());
  // A free function or variable named detach is not a member call.
  EXPECT_TRUE(LintLibrary("int detach = 0; int g() { return detach; }\n")
                  .empty());
}

// -- registry-publish ---------------------------------------------------------

TEST(LintTest, FlagsDirectRegistryPublish) {
  const auto findings = LintLibrary(
      "void f(ModelRegistry& r, M m) { r.Publish(\"adamel\", m); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "registry-publish");
  EXPECT_TRUE(HasRule(
      LintLibrary(
          "void f(ModelRegistry* r, M m) { r->Publish(\"adamel\", m); }\n"),
      "registry-publish"));
}

TEST(LintTest, PublishDefinitionAndLifecycleCallerAreFine) {
  // The method's own qualified definition is not a member call.
  EXPECT_TRUE(
      LintLibrary("StatusOr<int> ModelRegistry::Publish(const std::string& "
                  "name, M model) { return 1; }\n")
          .empty());
  // src/serve/lifecycle* is the sanctioned caller (LintTree sets the flag).
  Options options;
  options.library_code = true;
  options.registry_publish_allowed = true;
  EXPECT_TRUE(
      LintSource("src/serve/lifecycle.cc",
                 "void f(ModelRegistry& r, M m) { r.Publish(\"a\", m); }\n",
                 options, {})
          .empty());
}

TEST(LintTest, RegistryPublishIsSuppressible) {
  const std::string source =
      "// adamel-lint: allow-next-line(registry-publish) -- test harness\n"
      "void f(ModelRegistry& r, M m) { r.Publish(\"a\", m); }\n";
  EXPECT_TRUE(LintLibrary(source).empty());
}

// -- cv-wait-no-predicate -----------------------------------------------------

TEST(LintTest, FlagsPredicatelessWait) {
  const auto findings = LintLibrary("void f(C& cv, L& l) { cv.wait(l); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "cv-wait-no-predicate");
  EXPECT_TRUE(HasRule(
      LintLibrary("void f(CondVar* cv, Mutex& mu) { cv->Wait(mu); }\n"),
      "cv-wait-no-predicate"));
}

TEST(LintTest, WaitWithPredicateIsFine) {
  const std::string source = R"cpp(
void f(CondVar& cv, Mutex& mu, bool& ready) {
  cv.Wait(mu, [&ready]() { return ready; });
}
)cpp";
  EXPECT_TRUE(LintLibrary(source).empty());
}

TEST(LintTest, TimedWaitSlicesAreFine) {
  // Timed waits re-check their condition in the surrounding loop, so
  // wait_for / WaitFor with only a duration argument are not flagged.
  const std::string source = R"cpp(
void f(CondVar& cv, Mutex& mu) {
  cv.WaitFor(mu, kSlice);
}
)cpp";
  EXPECT_TRUE(LintLibrary(source).empty());
}

TEST(LintTest, PredicatelessWaitIsSuppressible) {
  const auto findings = LintLibrary(
      "void f(C& cv, L& l) { cv.wait(l); }  "
      "// adamel-lint: allow(cv-wait-no-predicate) -- fixture\n");
  EXPECT_TRUE(findings.empty());
}

// -- tokenizer: digit separators ---------------------------------------------

TEST(LintTest, DigitSeparatorLiteralDoesNotDesyncScanner) {
  // `2'000'000` must scan as one number token; before the pp-number fix the
  // scanner swallowed the trailing `'` of `1'` and treated the rest of the
  // file as a character literal, hiding every later violation.
  const std::string source = R"cpp(
constexpr long kDelay = 2'000'000;
int f() { return rand(); }
)cpp";
  const auto findings = LintLibrary(source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "nondeterminism");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintTest, NumberFollowedByCharLiteralScansCorrectly) {
  // A number immediately followed by a char literal (array index then quote)
  // must leave the quote to the char-literal scanner.
  const std::string source = R"cpp(
bool f(const char* s) { return s[0] == 'x'; }
int g() { return rand(); }
)cpp";
  EXPECT_TRUE(HasRule(LintLibrary(source), "nondeterminism"));
}

// -- comments and strings are inert ------------------------------------------

TEST(LintTest, IgnoresTokensInCommentsAndStrings) {
  const std::string source = R"cpp(
// rand() in a comment is fine; so is new int.
/* std::cout << rand(); */
const char* kDoc = "call rand() and new int";
const char* kRaw = R"doc(std::random_device inside a raw string)doc";
)cpp";
  EXPECT_TRUE(LintLibrary(source).empty());
}

// -- Status-name collection --------------------------------------------------

TEST(LintTest, CollectsStatusReturningNames) {
  const std::string header = R"cpp(
Status WriteFile(const std::string& path);
StatusOr<std::vector<int>> ParseInts(const std::string& text);
void NotAStatus();
int AlsoNot(Status s);
)cpp";
  std::set<std::string> names;
  CollectStatusNames(header, &names);
  EXPECT_EQ(names.count("WriteFile"), 1u);
  EXPECT_EQ(names.count("ParseInts"), 1u);
  EXPECT_EQ(names.count("NotAStatus"), 0u);
  EXPECT_EQ(names.count("AlsoNot"), 0u);
}

TEST(LintTest, CollectsVoidNamesForOverloadAmbiguity) {
  // `Status Save(path)` on one class and `void Save(BlobWriter*)` on
  // another share a name; LintTree drops such names from the checked set
  // so the void calls are not false-flagged as discarded Statuses.
  const std::string header = R"cpp(
Status Save(const std::string& path);
void Save(nn::BlobWriter* writer);
void Reset();
Status WriteFile(const std::string& path);
)cpp";
  std::set<std::string> void_names;
  CollectVoidNames(header, &void_names);
  EXPECT_EQ(void_names.count("Save"), 1u);
  EXPECT_EQ(void_names.count("Reset"), 1u);
  EXPECT_EQ(void_names.count("WriteFile"), 0u);
}

TEST(LintTest, RuleIdListIsStable) {
  const std::vector<std::string>& rules = RuleIds();
  for (const char* expected :
       {"nondeterminism", "unchecked-status", "void-cast-status", "raw-new",
        "cout-debug", "include-guard", "banned-identifier", "telemetry-clock",
        "bad-suppression", "raw-intrinsic", "raw-mutex",
        "unannotated-guarded-member", "detached-thread",
        "cv-wait-no-predicate", "registry-publish"}) {
    EXPECT_TRUE(std::find(rules.begin(), rules.end(), expected) !=
                rules.end())
        << expected;
  }
}

TEST(LintTest, FormatFindingsRendersPathLineRule) {
  Finding f;
  f.file = "src/a.cc";
  f.line = 12;
  f.rule = "raw-new";
  f.message = "raw new";
  EXPECT_EQ(FormatFindings({f}), "src/a.cc:12: [raw-new] raw new\n");
}

}  // namespace
}  // namespace adamel::lint
