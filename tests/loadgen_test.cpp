// Tests for src/serve/loadgen: seeded-schedule determinism, open-loop
// accounting (every request lands in exactly one outcome bucket), exact
// replay of deterministic runs, and a small wall-clock run (the TSan CI job
// runs this binary for the real-thread path).

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/trainer.h"
#include "obs/clock.h"
#include "serve/loadgen.h"
#include "serve/service.h"

namespace adamel::serve {
namespace {

data::Record MakeRecord(std::vector<std::string> values) {
  data::Record record;
  record.id = "r";
  record.source = "s";
  record.values = std::move(values);
  return record;
}

data::PairDataset ToyDataset(int n, uint64_t seed) {
  Rng rng(seed);
  data::PairDataset dataset(data::Schema({"key", "noise"}));
  for (int i = 0; i < n; ++i) {
    const bool match = rng.Bernoulli(0.5);
    const std::string key = "key" + std::to_string(rng.UniformInt(50));
    data::LabeledPair pair;
    pair.left = MakeRecord({key, "blah" + std::to_string(rng.UniformInt(9))});
    pair.right = MakeRecord(
        {match ? key : "key" + std::to_string(rng.UniformInt(50) + 50),
         "blub" + std::to_string(rng.UniformInt(9))});
    pair.label = match ? data::kMatch : data::kNonMatch;
    dataset.Add(pair);
  }
  return dataset;
}

std::shared_ptr<const core::AdamelLinkage> TrainToyLinkage(uint64_t seed) {
  const data::PairDataset train = ToyDataset(60, seed);
  core::MelInputs inputs;
  inputs.source_train = &train;
  core::AdamelConfig config;
  config.epochs = 2;
  auto model = std::make_shared<core::AdamelLinkage>(
      core::AdamelVariant::kBase, config);
  const Status fitted = model->Fit(inputs);
  ADAMEL_CHECK(fitted.ok()) << fitted.ToString();
  return model;
}

bool SameEvent(const RequestEvent& a, const RequestEvent& b) {
  return a.arrival_ns == b.arrival_ns && a.tenant == b.tenant &&
         a.pair_offset == b.pair_offset && a.pair_count == b.pair_count;
}

LoadGenOptions SmallOptions(ArrivalSchedule schedule, uint64_t seed) {
  LoadGenOptions options;
  options.schedule = schedule;
  options.target_qps = 400.0;
  options.duration_s = 0.5;
  options.seed = seed;
  TenantSpec relaxed;
  relaxed.model = "m";
  relaxed.weight = 0.6;  // no deadline
  TenantSpec tight;
  tight.model = "m";
  tight.weight = 0.4;
  tight.deadline_ns = 10'000'000;  // 10 ms from scheduled arrival
  options.tenants = {relaxed, tight};
  return options;
}

TEST(LoadGenScheduleTest, ParseScheduleRoundTripsAndRejectsUnknown) {
  for (const ArrivalSchedule schedule :
       {ArrivalSchedule::kSteady, ArrivalSchedule::kDiurnal,
        ArrivalSchedule::kBurst, ArrivalSchedule::kSkewed}) {
    StatusOr<ArrivalSchedule> parsed =
        ParseSchedule(ScheduleName(schedule));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), schedule);
  }
  EXPECT_EQ(ParseSchedule("sawtooth").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LoadGenScheduleTest, BuildScheduleIsDeterministicInSeed) {
  const LoadGenOptions options = SmallOptions(ArrivalSchedule::kBurst, 7);
  const std::vector<RequestEvent> first = BuildSchedule(options, 32);
  const std::vector<RequestEvent> second = BuildSchedule(options, 32);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(SameEvent(first[i], second[i])) << "event " << i;
  }

  LoadGenOptions reseeded = options;
  reseeded.seed = 8;
  const std::vector<RequestEvent> other = BuildSchedule(reseeded, 32);
  bool differs = other.size() != first.size();
  for (size_t i = 0; !differs && i < first.size(); ++i) {
    differs = !SameEvent(first[i], other[i]);
  }
  EXPECT_TRUE(differs) << "different seeds produced identical schedules";
}

TEST(LoadGenScheduleTest, ScheduleMatchesShapeAndRange) {
  const LoadGenOptions options = SmallOptions(ArrivalSchedule::kSteady, 9);
  const std::vector<RequestEvent> events = BuildSchedule(options, 32);
  // ~200 expected arrivals (Poisson): accept a generous +/- 5 sigma.
  EXPECT_GT(events.size(), 120u);
  EXPECT_LT(events.size(), 280u);
  const int64_t duration_ns =
      static_cast<int64_t>(options.duration_s * 1e9);
  int64_t previous = 0;
  for (const RequestEvent& event : events) {
    EXPECT_GE(event.arrival_ns, previous);  // sorted by construction
    EXPECT_LT(event.arrival_ns, duration_ns);
    previous = event.arrival_ns;
    ASSERT_GE(event.tenant, 0);
    ASSERT_LT(event.tenant, 2);
    EXPECT_GE(event.pair_offset, 0);
    EXPECT_LE(event.pair_offset + event.pair_count, 32);
  }
}

// The tentpole determinism claim: the same seed against a fresh pump-mode
// service replays to *identical* metrics, latencies included, because fake
// time only moves by the synthetic batch cost.
TEST(LoadGenRunTest, DeterministicReplayIdenticalMetrics) {
  std::shared_ptr<const core::AdamelLinkage> model = TrainToyLinkage(41);
  const data::PairDataset dataset = ToyDataset(32, 42);
  const std::vector<float> offline = model->ScorePairs(dataset).value();

  const auto run_once = [&]() -> LoadMetrics {
    ServiceOptions service_options;
    service_options.batcher.worker_threads = 0;
    service_options.batcher.max_batch_pairs = 8;
    LinkageService service(service_options);
    ADAMEL_CHECK(service.registry().Register("m", 1, model).ok());
    LoadGen loadgen(&service, &dataset, {&offline, &offline},
                    SmallOptions(ArrivalSchedule::kBurst, 7));
    obs::ScopedFakeClock clock;
    return loadgen.RunDeterministic(&clock);
  };

  const LoadMetrics first = run_once();
  const LoadMetrics second = run_once();

  EXPECT_EQ(first.schedule, "burst");
  EXPECT_EQ(first.mode, "deterministic");
  EXPECT_GT(first.offered, 0);
  EXPECT_GT(first.completed, 0);
  EXPECT_TRUE(first.scores_bitwise_identical);
  // Open-loop accounting: every scheduled request has exactly one outcome.
  EXPECT_EQ(first.offered, first.completed + first.deadline_missed +
                               first.shed + first.failed);
  EXPECT_EQ(first.failed, 0);

  EXPECT_EQ(first.offered, second.offered);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.deadline_missed, second.deadline_missed);
  EXPECT_EQ(first.shed, second.shed);
  EXPECT_EQ(first.failed, second.failed);
  EXPECT_EQ(first.elapsed_s, second.elapsed_s);
  EXPECT_EQ(first.offered_qps, second.offered_qps);
  EXPECT_EQ(first.achieved_qps, second.achieved_qps);
  EXPECT_EQ(first.p50_ms, second.p50_ms);
  EXPECT_EQ(first.p95_ms, second.p95_ms);
  EXPECT_EQ(first.p99_ms, second.p99_ms);
  EXPECT_EQ(first.deadline_miss_rate, second.deadline_miss_rate);
  EXPECT_EQ(first.shed_rate, second.shed_rate);
  EXPECT_EQ(second.scores_bitwise_identical, true);
}

// Adaptive batching must not change *what* is computed, only when: served
// scores stay bitwise identical under the controller.
TEST(LoadGenRunTest, AdaptiveModeKeepsScoresBitwiseIdentical) {
  std::shared_ptr<const core::AdamelLinkage> model = TrainToyLinkage(43);
  const data::PairDataset dataset = ToyDataset(32, 44);
  const std::vector<float> offline = model->ScorePairs(dataset).value();

  ServiceOptions service_options;
  service_options.batcher.worker_threads = 0;
  service_options.batcher.max_batch_pairs = 8;
  service_options.batcher.adaptive = true;
  service_options.batcher.adaptive_max_batch_pairs = 32;
  LinkageService service(service_options);
  ADAMEL_CHECK(service.registry().Register("m", 1, model).ok());
  LoadGen loadgen(&service, &dataset, {&offline, &offline},
                  SmallOptions(ArrivalSchedule::kBurst, 11));
  obs::ScopedFakeClock clock;
  const LoadMetrics metrics = loadgen.RunDeterministic(&clock);
  EXPECT_GT(metrics.completed, 0);
  EXPECT_TRUE(metrics.scores_bitwise_identical);
  EXPECT_EQ(metrics.offered, metrics.completed + metrics.deadline_missed +
                                 metrics.shed + metrics.failed);
}

// Wall-clock mode with real client threads and a worker-thread service;
// exercised under TSan in CI.
TEST(LoadGenRunTest, WallClockSmallRunCompletes) {
  std::shared_ptr<const core::AdamelLinkage> model = TrainToyLinkage(45);
  const data::PairDataset dataset = ToyDataset(32, 46);
  const std::vector<float> offline = model->ScorePairs(dataset).value();

  ServiceOptions service_options;
  service_options.batcher.worker_threads = 2;
  LinkageService service(service_options);
  ADAMEL_CHECK(service.registry().Register("m", 1, model).ok());

  LoadGenOptions options = SmallOptions(ArrivalSchedule::kSteady, 13);
  options.target_qps = 200.0;
  options.duration_s = 0.3;
  LoadGen loadgen(&service, &dataset, {&offline, &offline}, options);
  const LoadMetrics metrics = loadgen.RunWallClock(/*client_threads=*/2);

  EXPECT_EQ(metrics.mode, "wall_clock");
  EXPECT_EQ(metrics.offered, static_cast<int64_t>(loadgen.schedule().size()));
  EXPECT_EQ(metrics.offered, metrics.completed + metrics.deadline_missed +
                                 metrics.shed + metrics.failed);
  EXPECT_GT(metrics.completed, 0);
  EXPECT_EQ(metrics.failed, 0);
  EXPECT_TRUE(metrics.scores_bitwise_identical);
  EXPECT_GT(metrics.elapsed_s, 0.0);
}

}  // namespace
}  // namespace adamel::serve
