// Tests for src/datagen: the generative worlds, source-profile rendering,
// pair sampling, and the Music/Monitor/Benchmark task builders — verifying
// that the paper's data challenges (C1-C3) are actually present in the
// generated data.

#include <cctype>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/string_util.h"

#include "datagen/benchmark_worlds.h"
#include "datagen/monitor_world.h"
#include "datagen/music_world.h"
#include "datagen/name_generator.h"
#include "datagen/world.h"

namespace adamel::datagen {
namespace {

World TinyWorld(uint64_t seed = 3) {
  WorldConfig config;
  config.attributes = {
      {.name = "name", .kind = AttributeKind::kEntityName},
      {.name = "maker", .kind = AttributeKind::kFamilyName},
      {.name = "genre",
       .kind = AttributeKind::kCategory,
       .category_cardinality = 5,
       .vocab_seed = 9},
      {.name = "year",
       .kind = AttributeKind::kNumeric,
       .numeric_lo = 2000,
       .numeric_hi = 2010},
      {.name = "src", .kind = AttributeKind::kSourceTag},
  };
  config.num_entities = 40;
  config.family_size = 4;
  config.seed = seed;
  World world(std::move(config));
  SourceProfile clean;
  clean.name = "clean";
  world.AddSource(clean);
  SourceProfile other;
  other.name = "other";
  world.AddSource(other);
  return world;
}

// --------------------------------------------------------- NameGenerator

TEST(NameGeneratorTest, TokensArePronounceableLowercase) {
  NameGenerator gen;
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const std::string token = gen.MakeToken(2, &rng);
    EXPECT_FALSE(token.empty());
    for (char c : token) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << token;
    }
  }
}

TEST(NameGeneratorTest, NamesHaveRequestedTokenCount) {
  NameGenerator gen;
  Rng rng(2);
  const std::string name = gen.MakeName(3, &rng);
  EXPECT_EQ(SplitWhitespace(name).size(), 3u);
  EXPECT_TRUE(std::isupper(static_cast<unsigned char>(name[0])));
}

TEST(NameGeneratorTest, FamilyVariantSharesLeadingToken) {
  NameGenerator gen;
  Rng rng(3);
  const std::string base = "Zarimo Kelet";
  const std::string variant = gen.MakeFamilyVariant(base, &rng);
  EXPECT_NE(variant, base);
  EXPECT_EQ(SplitWhitespace(variant)[0], "Zarimo");
}

TEST(NameGeneratorTest, AbbreviateToInitials) {
  EXPECT_EQ(NameGenerator::Abbreviate("Paul McCartney"), "P. M.");
  EXPECT_EQ(NameGenerator::Abbreviate("Cher"), "C.");
}

TEST(NameGeneratorTest, TransliterateIsDeterministicAndDisjoint) {
  const std::string t1 = NameGenerator::Transliterate("Hello World");
  const std::string t2 = NameGenerator::Transliterate("Hello World");
  EXPECT_EQ(t1, t2);
  EXPECT_NE(t1, "Hello World");
  // Shares no surface tokens with the input.
  EXPECT_EQ(t1.find("Hello"), std::string::npos);
}

TEST(NameGeneratorTest, TypoChangesString) {
  Rng rng(4);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    if (NameGenerator::InjectTypo("monitor", &rng) != "monitor") {
      ++changed;
    }
  }
  EXPECT_GT(changed, 30);  // transposition of equal chars can be a no-op
}

TEST(NameGeneratorTest, VocabTokenDeterministic) {
  EXPECT_EQ(NameGenerator::VocabToken(7, 3), NameGenerator::VocabToken(7, 3));
  EXPECT_NE(NameGenerator::VocabToken(7, 3), NameGenerator::VocabToken(7, 4));
  EXPECT_NE(NameGenerator::VocabToken(7, 3), NameGenerator::VocabToken(8, 3));
}

// ------------------------------------------------------------------ World

TEST(WorldTest, DeterministicGivenSeed) {
  const World a = TinyWorld(5);
  const World b = TinyWorld(5);
  for (int e = 0; e < a.num_entities(); ++e) {
    EXPECT_EQ(a.entity(e).tokens, b.entity(e).tokens);
  }
}

TEST(WorldTest, FamilyMembersShareFamilyName) {
  const World world = TinyWorld();
  const Entity& first = world.entity(0);
  const Entity& sibling = world.entity(1);
  EXPECT_EQ(first.family, sibling.family);
  EXPECT_EQ(first.tokens[1], sibling.tokens[1]);  // maker = family name
  EXPECT_NE(first.tokens[0], sibling.tokens[0]);  // name differs
}

TEST(WorldTest, FamilyMembersShareLeadingNameToken) {
  const World world = TinyWorld();
  EXPECT_EQ(world.entity(0).tokens[0][0], world.entity(2).tokens[0][0]);
}

TEST(WorldTest, NumericValuesInRange) {
  const World world = TinyWorld();
  for (int e = 0; e < world.num_entities(); ++e) {
    const int year = std::stoi(world.entity(e).tokens[3][0]);
    EXPECT_GE(year, 2000);
    EXPECT_LE(year, 2010);
  }
}

TEST(WorldTest, RenderFillsSourceTag) {
  const World world = TinyWorld();
  Rng rng(6);
  const data::Record record = world.Render(0, "clean", &rng);
  EXPECT_EQ(record.values[4], "clean");
  EXPECT_EQ(record.source, "clean");
  EXPECT_EQ(record.entity_id, "e0");
}

TEST(WorldTest, UnsupportedAttributeAlwaysMissing) {
  World world = TinyWorld();
  SourceProfile sparse;
  sparse.name = "sparse";
  sparse.attributes.resize(world.schema().size());
  sparse.attributes[2].supported = false;
  world.AddSource(sparse);
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(world.Render(i, "sparse", &rng).values[2].empty());
  }
}

TEST(WorldTest, MissingProbabilityIsRespected) {
  World world = TinyWorld();
  SourceProfile holey;
  holey.name = "holey";
  holey.attributes.resize(world.schema().size());
  holey.attributes[0].missing_prob = 0.5;
  world.AddSource(holey);
  Rng rng(8);
  int missing = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    if (world.Render(i % world.num_entities(), "holey", &rng)
            .values[0]
            .empty()) {
      ++missing;
    }
  }
  EXPECT_NEAR(missing / static_cast<double>(n), 0.5, 0.08);
}

TEST(WorldTest, AbbreviationProducesInitials) {
  World world = TinyWorld();
  SourceProfile abbrev;
  abbrev.name = "abbrev";
  abbrev.attributes.resize(world.schema().size());
  abbrev.attributes[0].abbrev_prob = 1.0;
  world.AddSource(abbrev);
  Rng rng(9);
  const data::Record record = world.Render(0, "abbrev", &rng);
  // Every name token is a single letter followed by '.'.
  for (const std::string& token : SplitWhitespace(record.values[0])) {
    EXPECT_EQ(token.size(), 2u);
    EXPECT_EQ(token[1], '.');
  }
}

TEST(WorldTest, SynonymIsDeterministicPerValueAndSource) {
  World world = TinyWorld();
  SourceProfile syn;
  syn.name = "syn";
  syn.decoration_vocab_seed = 77;
  syn.attributes.resize(world.schema().size());
  syn.attributes[2].synonym_prob = 1.0;
  world.AddSource(syn);
  Rng rng1(10);
  Rng rng2(11);
  const std::string v1 = world.Render(0, "syn", &rng1).values[2];
  const std::string v2 = world.Render(0, "syn", &rng2).values[2];
  EXPECT_EQ(v1, v2);  // same value, same source -> same synonym
  Rng rng3(12);
  EXPECT_NE(v1, world.Render(0, "clean", &rng3).values[2]);
}

TEST(WorldTest, DecorationAddsSourceVocabTokens) {
  World world = TinyWorld();
  SourceProfile deco;
  deco.name = "deco";
  deco.decoration_vocab_seed = 55;
  deco.attributes.resize(world.schema().size());
  deco.attributes[0].decoration_prob = 1.0;
  world.AddSource(deco);
  Rng rng(13);
  const data::Record plain = world.Render(0, "clean", &rng);
  const data::Record decorated = world.Render(0, "deco", &rng);
  EXPECT_GT(SplitWhitespace(decorated.values[0]).size(),
            SplitWhitespace(plain.values[0]).size());
}

// ------------------------------------------------------------ SamplePairs

TEST(SamplePairsTest, LabelsAndCounts) {
  const World world = TinyWorld();
  Rng rng(14);
  PairSamplingOptions options;
  options.left_sources = {"clean"};
  options.right_sources = {"other"};
  options.positives = 30;
  options.negatives = 50;
  const data::PairDataset pairs = SamplePairs(world, options, &rng);
  EXPECT_EQ(pairs.size(), 80);
  EXPECT_EQ(pairs.CountLabel(data::kMatch), 30);
  EXPECT_EQ(pairs.CountLabel(data::kNonMatch), 50);
}

TEST(SamplePairsTest, PositivesCoRefer) {
  const World world = TinyWorld();
  Rng rng(15);
  PairSamplingOptions options;
  options.left_sources = {"clean"};
  options.right_sources = {"other"};
  options.positives = 40;
  options.negatives = 0;
  // Bind the dataset before iterating: ranging directly over
  // `SamplePairs(...).pairs()` destroys the temporary dataset before the
  // loop body runs (the range-for lifetime extension does not reach through
  // the .pairs() accessor until C++23).
  const data::PairDataset sampled = SamplePairs(world, options, &rng);
  for (const data::LabeledPair& pair : sampled.pairs()) {
    EXPECT_EQ(pair.left.entity_id, pair.right.entity_id);
  }
}

TEST(SamplePairsTest, NegativesDoNotCoRefer) {
  const World world = TinyWorld();
  Rng rng(16);
  PairSamplingOptions options;
  options.left_sources = {"clean"};
  options.right_sources = {"other"};
  options.positives = 0;
  options.negatives = 40;
  // Bind the dataset before iterating: ranging directly over
  // `SamplePairs(...).pairs()` destroys the temporary dataset before the
  // loop body runs (the range-for lifetime extension does not reach through
  // the .pairs() accessor until C++23).
  const data::PairDataset sampled = SamplePairs(world, options, &rng);
  for (const data::LabeledPair& pair : sampled.pairs()) {
    EXPECT_NE(pair.left.entity_id, pair.right.entity_id);
  }
}

TEST(SamplePairsTest, SourcesComeFromPools) {
  const World world = TinyWorld();
  Rng rng(17);
  PairSamplingOptions options;
  options.left_sources = {"clean"};
  options.right_sources = {"other"};
  options.positives = 20;
  options.negatives = 20;
  // Bind the dataset before iterating: ranging directly over
  // `SamplePairs(...).pairs()` destroys the temporary dataset before the
  // loop body runs (the range-for lifetime extension does not reach through
  // the .pairs() accessor until C++23).
  const data::PairDataset sampled = SamplePairs(world, options, &rng);
  for (const data::LabeledPair& pair : sampled.pairs()) {
    EXPECT_EQ(pair.left.source, "clean");
    EXPECT_EQ(pair.right.source, "other");
  }
}

TEST(SamplePairsTest, WeakLabelNoiseBreaksCoReference) {
  const World world = TinyWorld();
  Rng rng(18);
  PairSamplingOptions options;
  options.left_sources = {"clean"};
  options.right_sources = {"other"};
  options.positives = 200;
  options.negatives = 0;
  options.weak_label_noise = 0.3;
  int mislabeled = 0;
  // Bind the dataset before iterating: ranging directly over
  // `SamplePairs(...).pairs()` destroys the temporary dataset before the
  // loop body runs (the range-for lifetime extension does not reach through
  // the .pairs() accessor until C++23).
  const data::PairDataset sampled = SamplePairs(world, options, &rng);
  for (const data::LabeledPair& pair : sampled.pairs()) {
    EXPECT_EQ(pair.label, data::kMatch);  // label says match...
    if (pair.left.entity_id != pair.right.entity_id) {
      ++mislabeled;  // ...but the records don't co-refer
    }
  }
  EXPECT_NEAR(mislabeled / 200.0, 0.3, 0.1);
}

// --------------------------------------------------------------- catalogs

TEST(MusicWorldTest, SevenSourcesAndNineAttributes) {
  const World world = MakeMusicWorld(MusicEntityType::kArtist, 1);
  EXPECT_EQ(world.source_names().size(), 7u);
  EXPECT_EQ(world.schema().size(), 9);
  EXPECT_TRUE(world.schema().Contains("name_native_language"));
}

TEST(MusicWorldTest, TaskSizesMatchTable3) {
  MusicTaskOptions options;
  options.entity_type = MusicEntityType::kArtist;
  options.seed = 2;
  const MelTask task = MakeMusicTask(options);
  EXPECT_EQ(task.source_train.size(), 374);
  EXPECT_EQ(task.test.size(), 541);
  EXPECT_EQ(task.support.size(), 100);
  EXPECT_EQ(task.support.CountLabel(data::kMatch), 50);
}

TEST(MusicWorldTest, TrainUsesOnlySeenSources) {
  MusicTaskOptions options;
  options.seed = 3;
  const MelTask task = MakeMusicTask(options);
  const std::vector<std::string> seen_sources = MusicSeenSources();
  const std::set<std::string> seen(seen_sources.begin(), seen_sources.end());
  for (const std::string& source : task.source_train.Sources()) {
    EXPECT_TRUE(seen.count(source)) << source;
  }
}

TEST(MusicWorldTest, DisjointTestAvoidsSeenSources) {
  MusicTaskOptions options;
  options.scenario = MelScenario::kDisjoint;
  options.seed = 4;
  const MelTask task = MakeMusicTask(options);
  const std::vector<std::string> seen_sources = MusicSeenSources();
  const std::set<std::string> seen(seen_sources.begin(), seen_sources.end());
  for (const std::string& source : task.test.Sources()) {
    EXPECT_FALSE(seen.count(source)) << source;
  }
}

TEST(MusicWorldTest, TargetUnlabeledHasNoLabels) {
  MusicTaskOptions options;
  options.seed = 5;
  const MelTask task = MakeMusicTask(options);
  EXPECT_EQ(task.target_unlabeled.CountLabel(data::kUnlabeled),
            task.target_unlabeled.size());
}

TEST(MonitorWorldTest, TwentyFourSourcesThirteenAttributes) {
  const World world = MakeMonitorWorld(1);
  EXPECT_EQ(world.source_names().size(), 24u);
  EXPECT_EQ(world.schema().size(), 13);
}

TEST(MonitorWorldTest, TargetOnlyAttributesAbsentInSeenSources) {
  const World world = MakeMonitorWorld(2);
  Rng rng(6);
  const data::Schema& schema = world.schema();
  for (const std::string& attr : MonitorTargetOnlyAttributes()) {
    const int index = schema.IndexOf(attr);
    ASSERT_GE(index, 0);
    for (const std::string& source : MonitorSeenSources()) {
      for (int e = 0; e < 10; ++e) {
        EXPECT_TRUE(world.Render(e, source, &rng).values[index].empty());
      }
    }
  }
}

TEST(MonitorWorldTest, TaskIsHeavilyImbalanced) {
  MonitorTaskOptions options;
  options.seed = 7;
  const MelTask task = MakeMonitorTask(options);
  EXPECT_LT(task.source_train.PositiveRate(), 0.1);
  EXPECT_EQ(task.test.CountLabel(data::kNonMatch), 1000);
}

TEST(MonitorIncrementalTest, SourcesGrowByTwoPerStep) {
  const MonitorIncrementalSeries series = MakeMonitorIncrementalSeries(3);
  ASSERT_GE(series.step_sources.size(), 2u);
  EXPECT_EQ(series.step_sources.front().size(), 7u);
  for (size_t i = 1; i < series.step_sources.size(); ++i) {
    EXPECT_EQ(series.step_sources[i].size(),
              series.step_sources[i - 1].size() + 2);
    EXPECT_GT(series.step_tests[i].size(), series.step_tests[i - 1].size());
  }
  EXPECT_EQ(series.step_sources.back().size(), 23u);
  EXPECT_EQ(series.train.size(), 1500);
  EXPECT_EQ(series.support.size(), 100);
}

TEST(BenchmarkWorldsTest, ElevenDatasets) {
  const auto specs = BenchmarkDatasets();
  EXPECT_EQ(specs.size(), 11u);
  int dirty = 0;
  for (const auto& spec : specs) {
    dirty += spec.dirty ? 1 : 0;
  }
  EXPECT_EQ(dirty, 4);
}

TEST(BenchmarkWorldsTest, TaskIsSingleDomainTwoSources) {
  const MelTask task = MakeBenchmarkTask(BenchmarkDatasets()[2], 5);
  EXPECT_EQ(task.source_train.Sources().size(), 2u);
  EXPECT_EQ(task.source_train.Sources(), task.test.Sources());
}

TEST(BenchmarkWorldsTest, DirtyVariantHasMoreMissing) {
  BenchmarkDatasetSpec clean{"DBLP-ACM", "Citation", false, 0.1};
  BenchmarkDatasetSpec dirty{"DBLP-ACM", "Citation", true, 0.15};
  auto missing_fraction = [](const MelTask& task) {
    int missing = 0;
    int total = 0;
    for (const data::LabeledPair& pair : task.source_train.pairs()) {
      for (int a = 0; a < task.source_train.schema().size(); ++a) {
        missing += pair.left.IsMissing(a) ? 1 : 0;
        ++total;
      }
    }
    return static_cast<double>(missing) / total;
  };
  EXPECT_GT(missing_fraction(MakeBenchmarkTask(dirty, 5)),
            missing_fraction(MakeBenchmarkTask(clean, 5)) + 0.1);
}

}  // namespace
}  // namespace adamel::datagen
