// Tests for nn/ops.h: forward values on hand-checked cases plus numerical
// gradient verification (CheckGradient) for every differentiable op.

#include <cmath>
#include <functional>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/grad_check.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace adamel::nn {
namespace {

constexpr double kGradTolerance = 2e-2;

Tensor RandomParam(int rows, int cols, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  Tensor t = Tensor::RandomNormal(rows, cols, scale, &rng,
                                  /*requires_grad=*/true);
  return t;
}

// ------------------------------------------------------------- forward

TEST(OpsForward, AddBroadcastRow) {
  const Tensor a = Tensor::FromVector(2, 2, {1, 2, 3, 4});
  const Tensor row = Tensor::FromVector(1, 2, {10, 20});
  const Tensor out = Add(a, row);
  EXPECT_FLOAT_EQ(out.At(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(out.At(1, 1), 24.0f);
}

TEST(OpsForward, AddBroadcastColumnAndScalar) {
  const Tensor a = Tensor::FromVector(2, 2, {1, 2, 3, 4});
  const Tensor col = Tensor::FromVector(2, 1, {10, 20});
  const Tensor out = Add(a, col);
  EXPECT_FLOAT_EQ(out.At(0, 1), 12.0f);
  EXPECT_FLOAT_EQ(out.At(1, 0), 23.0f);
  const Tensor out2 = Add(a, Tensor::Scalar(100.0f));
  EXPECT_FLOAT_EQ(out2.At(1, 1), 104.0f);
}

TEST(OpsForward, SubMulDiv) {
  const Tensor a = Tensor::FromVector(1, 3, {6, 8, 10});
  const Tensor b = Tensor::FromVector(1, 3, {2, 4, 5});
  EXPECT_FLOAT_EQ(Sub(a, b).At(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).At(0, 1), 32.0f);
  EXPECT_FLOAT_EQ(Div(a, b).At(0, 2), 2.0f);
}

TEST(OpsForward, UnaryValues) {
  const Tensor x = Tensor::FromVector(1, 4, {-1.0f, 0.0f, 1.0f, 2.0f});
  const Tensor relu = Relu(x);
  EXPECT_FLOAT_EQ(relu.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(relu.At(0, 3), 2.0f);
  EXPECT_NEAR(Tanh(x).At(0, 2), std::tanh(1.0), 1e-6);
  EXPECT_NEAR(Sigmoid(x).At(0, 1), 0.5, 1e-6);
  EXPECT_NEAR(Exp(x).At(0, 0), std::exp(-1.0), 1e-6);
}

TEST(OpsForward, SigmoidStableForExtremeInputs) {
  const Tensor x = Tensor::FromVector(1, 2, {-100.0f, 100.0f});
  const Tensor s = Sigmoid(x);
  EXPECT_NEAR(s.At(0, 0), 0.0, 1e-6);
  EXPECT_NEAR(s.At(0, 1), 1.0, 1e-6);
  EXPECT_TRUE(std::isfinite(s.At(0, 0)));
}

TEST(OpsForward, ClipClampsRange) {
  const Tensor x = Tensor::FromVector(1, 3, {-5.0f, 0.5f, 5.0f});
  const Tensor c = Clip(x, 0.0f, 1.0f);
  EXPECT_FLOAT_EQ(c.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 0.5f);
  EXPECT_FLOAT_EQ(c.At(0, 2), 1.0f);
}

TEST(OpsForward, MatMulKnownProduct) {
  const Tensor a = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::FromVector(3, 2, {7, 8, 9, 10, 11, 12});
  const Tensor c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(OpsForward, MatMulPropagatesNanThroughZeroActivations) {
  // Regression: the old kernel skipped `a == 0.0f` terms, which silently
  // dropped NaN/Inf from B (0 * NaN must stay NaN per IEEE 754).
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const Tensor a = Tensor::FromVector(1, 2, {0.0f, 0.0f});
  const Tensor b = Tensor::FromVector(2, 2, {nan, inf, 1.0f, 1.0f});
  const Tensor c = MatMul(a, b);
  EXPECT_TRUE(std::isnan(c.At(0, 0)));
  EXPECT_TRUE(std::isnan(c.At(0, 1)));  // 0 * inf == NaN
}

TEST(OpsGradient, MatMulBackwardPropagatesNanThroughZeroActivations) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor a = Tensor::FromVector(1, 2, {0.0f, 0.0f}, /*requires_grad=*/true);
  Tensor b = Tensor::FromVector(2, 1, {nan, 1.0f}, /*requires_grad=*/true);
  Tensor loss = Sum(MatMul(a, b));
  loss.Backward();
  // dA = dOut * B^T picks up the NaN weight; dB = A^T * dOut multiplies the
  // zero activations into the upstream gradient, which is finite here.
  EXPECT_TRUE(std::isnan(a.GradAt(0, 0)));
  EXPECT_FLOAT_EQ(a.GradAt(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(b.GradAt(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(b.GradAt(1, 0), 0.0f);
}

TEST(OpsForward, TransposeSwapsIndices) {
  const Tensor a = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor t = Transpose(a);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_FLOAT_EQ(t.At(2, 1), 6.0f);
}

TEST(OpsForward, ConcatAndSlice) {
  const Tensor a = Tensor::FromVector(2, 1, {1, 2});
  const Tensor b = Tensor::FromVector(2, 2, {3, 4, 5, 6});
  const Tensor cols = ConcatCols({a, b});
  EXPECT_EQ(cols.cols(), 3);
  EXPECT_FLOAT_EQ(cols.At(1, 2), 6.0f);
  const Tensor back = SliceCols(cols, 1, 2);
  EXPECT_EQ(back.ToVector(), b.ToVector());

  const Tensor rows = ConcatRows({Tensor::FromVector(1, 2, {1, 2}),
                                  Tensor::FromVector(2, 2, {3, 4, 5, 6})});
  EXPECT_EQ(rows.rows(), 3);
  EXPECT_FLOAT_EQ(rows.At(2, 1), 6.0f);
  EXPECT_EQ(SliceRows(rows, 1, 2).At(0, 0), 3.0f);
}

TEST(OpsForward, SelectRowsGathersWithRepeats) {
  const Tensor a = Tensor::FromVector(3, 2, {1, 2, 3, 4, 5, 6});
  const Tensor sel = SelectRows(a, {2, 0, 2});
  EXPECT_EQ(sel.rows(), 3);
  EXPECT_FLOAT_EQ(sel.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(sel.At(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(sel.At(2, 1), 6.0f);
}

TEST(OpsForward, ReshapeKeepsOrder) {
  const Tensor a = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  const Tensor r = Reshape(a, 3, 2);
  EXPECT_FLOAT_EQ(r.At(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(r.At(2, 1), 6.0f);
}

TEST(OpsForward, Reductions) {
  const Tensor a = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(Sum(a).At(0, 0), 21.0f);
  EXPECT_FLOAT_EQ(Mean(a).At(0, 0), 3.5f);
  const Tensor rows = SumRows(a);
  EXPECT_FLOAT_EQ(rows.At(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(rows.At(1, 0), 15.0f);
  const Tensor cols = SumCols(a);
  EXPECT_FLOAT_EQ(cols.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(cols.At(0, 2), 9.0f);
  const Tensor mean_cols = MeanCols(a);
  EXPECT_FLOAT_EQ(mean_cols.At(0, 1), 3.5f);
}

TEST(OpsForward, SoftmaxRowsSumToOne) {
  Rng rng(3);
  const Tensor x = Tensor::RandomNormal(4, 6, 3.0f, &rng);
  const Tensor s = Softmax(x);
  for (int r = 0; r < s.rows(); ++r) {
    double total = 0.0;
    for (int c = 0; c < s.cols(); ++c) {
      EXPECT_GT(s.At(r, c), 0.0f);
      total += s.At(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(OpsForward, SoftmaxInvariantToShift) {
  const Tensor x = Tensor::FromVector(1, 3, {1.0f, 2.0f, 3.0f});
  const Tensor y = Tensor::FromVector(1, 3, {101.0f, 102.0f, 103.0f});
  const Tensor sx = Softmax(x);
  const Tensor sy = Softmax(y);
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(sx.At(0, c), sy.At(0, c), 1e-6);
  }
}

TEST(OpsForward, DropoutIdentityInEval) {
  Rng rng(4);
  const Tensor x = Tensor::Full(2, 4, 3.0f);
  const Tensor y = Dropout(x, 0.5f, &rng, /*training=*/false);
  EXPECT_EQ(y.ToVector(), x.ToVector());
}

TEST(OpsForward, DropoutZeroesAndRescales) {
  Rng rng(4);
  const Tensor x = Tensor::Full(1, 1000, 1.0f);
  const Tensor y = Dropout(x, 0.5f, &rng, /*training=*/true);
  int zeros = 0;
  double sum = 0.0;
  for (float v : y.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // inverted-dropout scale 1/(1-p)
    }
    sum += v;
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.05);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.1);
}

TEST(OpsForward, BceWithLogitsMatchesClosedForm) {
  const Tensor logits = Tensor::FromVector(2, 1, {0.0f, 2.0f});
  const Tensor loss = BceWithLogits(logits, {1.0f, 0.0f});
  const double expected =
      (-std::log(0.5) + (-std::log(1.0 - 1.0 / (1.0 + std::exp(-2.0))))) /
      2.0;
  EXPECT_NEAR(loss.At(0, 0), expected, 1e-5);
}

TEST(OpsForward, BceWithLogitsWeightsShiftTheMean) {
  const Tensor logits = Tensor::FromVector(2, 1, {3.0f, -3.0f});
  // First example is badly wrong (y=0 with logit 3), second nearly right.
  const Tensor unweighted = BceWithLogits(logits, {0.0f, 0.0f});
  const Tensor upweight_bad =
      BceWithLogits(logits, {0.0f, 0.0f}, {10.0f, 1.0f});
  EXPECT_GT(upweight_bad.At(0, 0), unweighted.At(0, 0));
}

TEST(OpsForward, BceStableOnHugeLogits) {
  const Tensor logits = Tensor::FromVector(2, 1, {1000.0f, -1000.0f});
  const Tensor loss = BceWithLogits(logits, {1.0f, 0.0f});
  EXPECT_NEAR(loss.At(0, 0), 0.0, 1e-5);
  EXPECT_TRUE(std::isfinite(loss.At(0, 0)));
}

TEST(OpsForward, RowKlDivergenceZeroForIdenticalRows) {
  const std::vector<float> p = {0.2f, 0.3f, 0.5f};
  const Tensor q = Tensor::FromVector(2, 3,
                                      {0.2f, 0.3f, 0.5f, 0.2f, 0.3f, 0.5f});
  EXPECT_NEAR(RowKlDivergence(p, q).At(0, 0), 0.0, 1e-5);
}

TEST(OpsForward, RowKlDivergencePositiveForDifferentRows) {
  const std::vector<float> p = {0.9f, 0.05f, 0.05f};
  const Tensor q =
      Tensor::FromVector(1, 3, {0.05f, 0.05f, 0.9f});
  EXPECT_GT(RowKlDivergence(p, q).At(0, 0), 1.0);
}

// ------------------------------------------------------------- gradients

// Each entry builds a scalar loss from a 2x3 parameter; CheckGradient
// verifies the analytic gradient numerically.
struct GradCase {
  const char* name;
  std::function<Tensor(const Tensor&)> loss;
};

class OpsGradientSweep : public ::testing::TestWithParam<GradCase> {};

TEST_P(OpsGradientSweep, MatchesNumericalGradient) {
  Tensor param = RandomParam(2, 3, 99, 0.7f);
  const auto& loss_fn = GetParam().loss;
  const GradCheckResult result =
      CheckGradient([&] { return loss_fn(param); }, param);
  EXPECT_LT(result.max_relative_error, kGradTolerance)
      << GetParam().name << " worst index " << result.worst_index
      << " analytic " << result.worst_analytic << " numeric "
      << result.worst_numeric;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpsGradientSweep,
    ::testing::Values(
        GradCase{"sum", [](const Tensor& p) { return Sum(p); }},
        GradCase{"mean", [](const Tensor& p) { return Mean(p); }},
        GradCase{"square", [](const Tensor& p) { return Sum(Square(p)); }},
        GradCase{"tanh", [](const Tensor& p) { return Sum(Tanh(p)); }},
        GradCase{"sigmoid",
                 [](const Tensor& p) { return Sum(Sigmoid(p)); }},
        GradCase{"exp", [](const Tensor& p) { return Sum(Exp(p)); }},
        GradCase{"softmax_weighted",
                 [](const Tensor& p) {
                   const Tensor w = Tensor::FromVector(
                       1, 3, {1.0f, -2.0f, 3.0f});
                   return Sum(Mul(Softmax(p), w));
                 }},
        GradCase{"matmul",
                 [](const Tensor& p) {
                   const Tensor b = Tensor::FromVector(
                       3, 2, {1, -1, 2, 0.5f, -0.25f, 1});
                   return Sum(Square(MatMul(p, b)));
                 }},
        GradCase{"transpose",
                 [](const Tensor& p) {
                   return Sum(Square(Transpose(p)));
                 }},
        GradCase{"broadcast_add_row",
                 [](const Tensor& p) {
                   const Tensor x = Tensor::Full(4, 3, 0.5f);
                   return Sum(Square(Add(x, SliceRows(p, 0, 1))));
                 }},
        GradCase{"broadcast_mul_col",
                 [](const Tensor& p) {
                   const Tensor x = Tensor::Full(2, 5, 0.5f);
                   return Sum(Square(Mul(x, SliceCols(p, 0, 1))));
                 }},
        GradCase{"div",
                 [](const Tensor& p) {
                   const Tensor b = Tensor::Full(2, 3, 2.0f);
                   return Sum(Div(Exp(p), AddScalar(Square(b), 1.0f)));
                 }},
        GradCase{"concat_slice",
                 [](const Tensor& p) {
                   const Tensor left = SliceCols(p, 0, 1);
                   const Tensor right = SliceCols(p, 1, 2);
                   return Sum(Square(ConcatCols({right, left})));
                 }},
        GradCase{"select_rows",
                 [](const Tensor& p) {
                   return Sum(Square(SelectRows(p, {1, 0, 1})));
                 }},
        GradCase{"reshape",
                 [](const Tensor& p) {
                   return Sum(Square(Reshape(p, 3, 2)));
                 }},
        GradCase{"sum_rows",
                 [](const Tensor& p) { return Sum(Square(SumRows(p))); }},
        GradCase{"mean_cols",
                 [](const Tensor& p) { return Sum(Square(MeanCols(p))); }},
        GradCase{"bce",
                 [](const Tensor& p) {
                   return BceWithLogits(Reshape(p, 6, 1),
                                        {1, 0, 1, 0, 1, 0});
                 }},
        GradCase{"bce_weighted",
                 [](const Tensor& p) {
                   return BceWithLogits(Reshape(p, 6, 1),
                                        {1, 0, 1, 0, 1, 0},
                                        {1, 2, 0.5f, 1, 3, 1});
                 }},
        GradCase{"kl_via_softmax",
                 [](const Tensor& p) {
                   return RowKlDivergence({0.5f, 0.2f, 0.3f}, Softmax(p));
                 }}),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

TEST(OpsGradient, MatMulBothSides) {
  Tensor a = RandomParam(3, 4, 1);
  Tensor b = RandomParam(4, 2, 2);
  auto loss = [&] { return Sum(Square(MatMul(a, b))); };
  EXPECT_LT(CheckGradient(loss, a).max_relative_error, kGradTolerance);
  EXPECT_LT(CheckGradient(loss, b).max_relative_error, kGradTolerance);
}

TEST(OpsGradient, KlGradientFlowsToTargetMeanToo) {
  // Both the source attention and the (mean of the) target attention are
  // functions of the parameter: gradient must flow through both paths, as
  // required by the joint update of W, a in Section 4.4.1.
  Tensor p = RandomParam(4, 3, 7, 0.5f);
  auto loss = [&] {
    const Tensor source = Softmax(SliceRows(p, 0, 2));
    const Tensor target = Softmax(SliceRows(p, 2, 2));
    const Tensor mean_target = AddScalar(MeanCols(target), 1e-8f);
    const Tensor q = AddScalar(source, 1e-8f);
    return Sum(Mul(mean_target, Log(Div(mean_target, q))));
  };
  const GradCheckResult result = CheckGradient(loss, p);
  EXPECT_LT(result.max_relative_error, kGradTolerance);
  // And the target half of the parameter really receives gradient.
  p.ZeroGrad();
  Tensor l = loss();
  l.Backward();
  double target_grad_mag = 0.0;
  for (int c = 0; c < 3; ++c) {
    target_grad_mag += std::fabs(p.GradAt(2, c)) + std::fabs(p.GradAt(3, c));
  }
  EXPECT_GT(target_grad_mag, 0.0);
}

}  // namespace
}  // namespace adamel::nn
