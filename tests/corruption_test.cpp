// Checkpoint-corruption sweeps: take real containers produced by
// nn/serialize (CheckpointWriter, and a full trained-model checkpoint),
// then flip bits at every byte offset and truncate at every length. Every
// corruption must surface as a clean non-OK Status — never a crash, hang,
// or silently-loaded garbage. checkpoint_test covers the happy paths; this
// file is the adversarial complement.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "core/trainer.h"
#include "data/pair_dataset.h"
#include "gallery/gallery.h"
#include "nn/serialize.h"
#include "nn/tensor.h"

namespace adamel {
namespace {

// A container with realistic contents: two sections, one holding named
// tensors (the shape real model checkpoints take).
std::string MakeCheckpointBlob() {
  nn::BlobWriter meta;
  meta.WriteU32(7);
  meta.WriteString("golden-task");

  nn::BlobWriter weights;
  Rng rng(11);
  std::vector<nn::NamedTensor> tensors;
  tensors.emplace_back("w", nn::Tensor::RandomNormal(3, 4, 1.0f, &rng));
  tensors.emplace_back("b", nn::Tensor::RandomNormal(1, 4, 1.0f, &rng));
  nn::WriteNamedTensors(tensors, &weights);

  nn::CheckpointWriter writer;
  writer.AddSection("meta", meta.TakeBuffer());
  writer.AddSection("weights", weights.TakeBuffer());
  return writer.Serialize();
}

// True when the corrupted blob is cleanly rejected: either Parse fails, or
// it parses but no longer exposes the original sections intact (a flipped
// byte inside a section *name* is not CRC-protected, so the container
// parses — the consumer's by-name lookup is the layer that rejects it).
bool CleanlyRejected(std::string blob) {
  const StatusOr<nn::CheckpointReader> parsed =
      nn::CheckpointReader::Parse(std::move(blob));
  if (!parsed.ok()) {
    return true;
  }
  return !parsed.value().HasSection("meta") ||
         !parsed.value().HasSection("weights");
}

TEST(CorruptionTest, EveryBitFlipIsCleanlyRejected) {
  const std::string blob = MakeCheckpointBlob();
  ASSERT_TRUE(nn::CheckpointReader::Parse(blob).ok());
  for (size_t offset = 0; offset < blob.size(); ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = blob;
      corrupted[offset] ^= static_cast<char>(1 << bit);
      EXPECT_TRUE(CleanlyRejected(std::move(corrupted)))
          << "byte " << offset << " bit " << bit
          << " corrupted a checkpoint without detection";
    }
  }
}

TEST(CorruptionTest, EveryTruncationIsRejected) {
  const std::string blob = MakeCheckpointBlob();
  for (size_t length = 0; length < blob.size(); ++length) {
    const StatusOr<nn::CheckpointReader> parsed =
        nn::CheckpointReader::Parse(blob.substr(0, length));
    EXPECT_FALSE(parsed.ok()) << "prefix of length " << length << " parsed";
  }
}

TEST(CorruptionTest, TrailingGarbageIsRejected) {
  std::string blob = MakeCheckpointBlob();
  blob += "extra";
  EXPECT_FALSE(nn::CheckpointReader::Parse(std::move(blob)).ok());
}

TEST(CorruptionTest, BadMagicAndVersionHaveDistinctStatuses) {
  const std::string blob = MakeCheckpointBlob();

  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  const StatusOr<nn::CheckpointReader> magic_result =
      nn::CheckpointReader::Parse(std::move(bad_magic));
  ASSERT_FALSE(magic_result.ok());
  EXPECT_EQ(magic_result.status().code(), StatusCode::kInvalidArgument);

  // The version field is the little-endian u32 after the 4 magic bytes; a
  // future version is a precondition failure ("upgrade the reader"), not
  // corruption.
  std::string bad_version = blob;
  bad_version[4] = static_cast<char>(nn::kCheckpointVersion + 1);
  const StatusOr<nn::CheckpointReader> version_result =
      nn::CheckpointReader::Parse(std::move(bad_version));
  ASSERT_FALSE(version_result.ok());
  EXPECT_EQ(version_result.status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CorruptionTest, CorruptPayloadReportsCrcFailure) {
  const std::string blob = MakeCheckpointBlob();
  // Flip a bit near the end, well inside the last section's payload.
  std::string corrupted = blob;
  corrupted[blob.size() - 3] ^= 0x10;
  const StatusOr<nn::CheckpointReader> parsed =
      nn::CheckpointReader::Parse(std::move(corrupted));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("CRC32"), std::string::npos)
      << parsed.status().ToString();
}

TEST(CorruptionTest, BlobReaderNeverReadsPastTruncatedTensors) {
  // Tensor payloads declare their own sizes; a reader over a truncated
  // payload must fail on the bounds check, not read out of range.
  nn::BlobWriter writer;
  const nn::Tensor tensor = nn::Tensor::Zeros(8, 8);
  nn::WriteTensor(tensor, &writer);
  const std::string payload = writer.buffer();
  for (size_t length = 0; length < payload.size(); ++length) {
    nn::BlobReader reader{std::string_view(payload).substr(0, length)};
    const StatusOr<nn::Tensor> read = nn::ReadTensor(&reader);
    EXPECT_FALSE(read.ok()) << "tensor prefix of length " << length;
  }
}

// -- end-to-end: a real trained-model checkpoint ------------------------------

data::Record MakeRecord(std::string source, std::vector<std::string> values) {
  data::Record record;
  record.id = "r";
  record.source = std::move(source);
  record.values = std::move(values);
  return record;
}

data::PairDataset ToyDataset(int n, uint64_t seed) {
  Rng rng(seed);
  data::PairDataset dataset(data::Schema({"key", "noise"}));
  for (int i = 0; i < n; ++i) {
    const bool match = rng.Bernoulli(0.5);
    const std::string key = "key" + std::to_string(rng.UniformInt(50));
    const std::string other =
        match ? key : "key" + std::to_string(rng.UniformInt(50) + 50);
    data::LabeledPair pair;
    pair.left = MakeRecord("s0", {key, "blah"});
    pair.right = MakeRecord("s1", {other, "blub"});
    pair.label = match ? data::kMatch : data::kNonMatch;
    dataset.Add(std::move(pair));
  }
  return dataset;
}

TEST(CorruptionTest, TrainedModelFlipSweepNeverLoadsGarbage) {
  const data::PairDataset train = ToyDataset(60, 34);
  const data::PairDataset test = ToyDataset(30, 35);
  core::AdamelConfig config;
  config.epochs = 1;
  const core::AdamelTrainer trainer(config);
  core::MelInputs inputs;
  inputs.source_train = &train;
  const core::TrainedAdamel trained =
      trainer.Fit(core::AdamelVariant::kBase, inputs);
  const std::vector<float> expected = trained.ScorePairs(test);
  const std::string path = ::testing::TempDir() + "/corruption_model.ckpt";
  ASSERT_TRUE(trained.SaveToFile(path).ok());
  const StatusOr<std::string> contents = nn::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  const std::string& blob = contents.value();

  // Sampled sweep (every 17th byte, rotating bit) to keep the test fast on
  // the multi-KB model file; the container-level tests above are
  // exhaustive. The contract is "never load garbage": a flip either fails
  // with a clean Status (payload CRC, framing, magic) or — when it lands in
  // the *name* of a section the loader does not require — loads a model
  // bitwise identical to the original. No third outcome is acceptable.
  const std::string flipped_path =
      ::testing::TempDir() + "/corruption_model_flipped.ckpt";
  for (size_t offset = 0; offset < blob.size(); offset += 17) {
    std::string corrupted = blob;
    corrupted[offset] ^= static_cast<char>(1 << (offset % 8));
    ASSERT_TRUE(nn::AtomicWriteFile(flipped_path, corrupted).ok());
    const StatusOr<std::shared_ptr<core::TrainedAdamel>> loaded =
        core::TrainedAdamel::LoadFromFile(flipped_path);
    if (loaded.ok()) {
      EXPECT_EQ((*loaded)->ScorePairs(test), expected)
          << "flip at byte " << offset << " changed predictions";
    }
  }
}

// -- gallery index files ------------------------------------------------------

// A small but structurally complete gallery blob: several shards, stored
// records, live and (via the tiny cap) overflowed buckets.
std::string MakeGalleryBlob() {
  gallery::GalleryOptions options;
  options.embedding.dim = 16;
  options.num_shards = 3;
  options.max_bucket_postings = 6;
  auto built =
      gallery::Gallery::Create(data::Schema({"name", "extra"}), options)
          .value();
  Rng rng(51);
  std::vector<data::Record> records;
  for (int i = 0; i < 24; ++i) {
    data::Record record;
    record.id = "g" + std::to_string(i);
    record.source = "s";
    record.values = {"common tok" + std::to_string(rng.UniformInt(6)),
                     "x" + std::to_string(i)};
    records.push_back(std::move(record));
  }
  EXPECT_TRUE(built->Enroll(records).ok());
  return built->Serialize();
}

// The gallery contract is one notch stricter than "cleanly rejected": any
// defect in the bytes must surface as kDataLoss specifically — never a crash
// and never a gallery that would answer searches from corrupt state.
TEST(CorruptionTest, GalleryBitFlipSweepIsAlwaysDataLossOrHarmless) {
  const std::string blob = MakeGalleryBlob();
  const std::string canonical =
      gallery::Gallery::Deserialize(blob).value()->Serialize();
  for (size_t offset = 0; offset < blob.size(); ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = blob;
      corrupted[offset] ^= static_cast<char>(1 << bit);
      const StatusOr<std::unique_ptr<gallery::Gallery>> loaded =
          gallery::Gallery::Deserialize(std::move(corrupted));
      if (loaded.ok()) {
        // Flips in CRC-unprotected container framing may still parse (e.g.
        // a section-name flip that collides back); acceptable only when the
        // loaded gallery is logically identical to the original.
        EXPECT_EQ(loaded.value()->Serialize(), canonical)
            << "byte " << offset << " bit " << bit
            << " silently changed the index";
      } else {
        EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
            << "byte " << offset << " bit " << bit << ": "
            << loaded.status().ToString();
      }
    }
  }
}

TEST(CorruptionTest, GalleryTruncationSweepIsAlwaysDataLoss) {
  const std::string blob = MakeGalleryBlob();
  for (size_t length = 0; length < blob.size(); ++length) {
    const StatusOr<std::unique_ptr<gallery::Gallery>> loaded =
        gallery::Gallery::Deserialize(blob.substr(0, length));
    ASSERT_FALSE(loaded.ok()) << "prefix of length " << length << " loaded";
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "prefix of length " << length << ": "
        << loaded.status().ToString();
  }
}

}  // namespace
}  // namespace adamel
