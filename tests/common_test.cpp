// Unit tests for src/common: Rng, Status/StatusOr, string utilities.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace adamel {
namespace {

// ---------------------------------------------------------------- Rng

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(RngTest, UniformIntCoversSupport) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalScaleAndShift) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Normal(5.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.08);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(14);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Categorical({1.0, 2.0, 7.0})];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.02);
}

TEST(RngTest, CategoricalSkipsZeroWeights) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.Categorical({0.0, 1.0, 0.0}), 1);
  }
}

TEST(RngTest, ZipfIsSkewedTowardHead) {
  Rng rng(16);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.Zipf(10, 1.2)];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(18);
  const std::vector<int> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleAllReturnsEverything) {
  Rng rng(19);
  const std::vector<int> sample = rng.SampleWithoutReplacement(5, 5);
  const std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  // The child stream should not mirror the parent's subsequent stream.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.Next() == child.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

// Parameterized property: uniform mean ≈ midpoint for several ranges.
class RngUniformSweep : public ::testing::TestWithParam<std::pair<double,
                                                                  double>> {};

TEST_P(RngUniformSweep, MeanNearMidpoint) {
  const auto [lo, hi] = GetParam();
  Rng rng(static_cast<uint64_t>(lo * 7 + hi * 13 + 99));
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Uniform(lo, hi);
  }
  EXPECT_NEAR(sum / n, (lo + hi) / 2.0, (hi - lo) * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngUniformSweep,
                         ::testing::Values(std::make_pair(0.0, 1.0),
                                           std::make_pair(-1.0, 1.0),
                                           std::make_pair(10.0, 20.0),
                                           std::make_pair(-5.0, -1.0)));

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = InvalidArgumentError("bad thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad thing");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, AllErrorConstructorsSetCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(NotFoundError("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("hello"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "hello");
}

Status FailsThenPropagates() {
  ADAMEL_RETURN_IF_ERROR(InternalError("inner"));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  const Status status = FailsThenPropagates();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- strings

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpties) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinRoundTrip) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ToLowerAsciiPreservesUtf8) {
  EXPECT_EQ(ToLowerAscii("HeLLo"), "hello");
  // Multi-byte UTF-8 passes through untouched.
  EXPECT_EQ(ToLowerAscii("Ü"), "Ü");
}

TEST(StringUtilTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hi \n"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("hi"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("left_name", "left_"));
  EXPECT_FALSE(StartsWith("lef", "left_"));
  EXPECT_TRUE(EndsWith("name_shared", "_shared"));
  EXPECT_FALSE(EndsWith("shared", "_shared_x"));
}

TEST(StringUtilTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(0.92113, 4), "0.9211");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace adamel
