// Tests for src/serve: the warm model registry (typed checkpoint-error
// contract), the micro-batcher (deadlines, backpressure, coalescing
// determinism), and the end-to-end LinkageService under concurrency.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/deepmatcher.h"
#include "baselines/tler.h"
#include "common/rng.h"
#include "core/trainer.h"
#include "gallery/gallery.h"
#include "nn/serialize.h"
#include "obs/clock.h"
#include "serve/batcher.h"
#include "serve/registry.h"
#include "serve/service.h"

namespace adamel::serve {
namespace {

data::Record MakeRecord(std::vector<std::string> values) {
  data::Record record;
  record.id = "r";
  record.source = "s";
  record.values = std::move(values);
  return record;
}

data::LabeledPair MakePair(std::vector<std::string> left,
                           std::vector<std::string> right, int label) {
  data::LabeledPair pair;
  pair.left = MakeRecord(std::move(left));
  pair.right = MakeRecord(std::move(right));
  pair.label = label;
  return pair;
}

// Pairs match iff the "key" attribute shares its token.
data::PairDataset ToyDataset(int n, uint64_t seed) {
  Rng rng(seed);
  data::PairDataset dataset(data::Schema({"key", "noise"}));
  for (int i = 0; i < n; ++i) {
    const bool match = rng.Bernoulli(0.5);
    const std::string key = "key" + std::to_string(rng.UniformInt(50));
    const std::string other =
        match ? key : "key" + std::to_string(rng.UniformInt(50) + 50);
    dataset.Add(MakePair({key, "blah" + std::to_string(rng.UniformInt(9))},
                         {other, "blub" + std::to_string(rng.UniformInt(9))},
                         match ? data::kMatch : data::kNonMatch));
  }
  return dataset;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

core::AdamelConfig FastConfig() {
  core::AdamelConfig config;
  config.epochs = 2;
  return config;
}

// Trains a small AdaMEL-base linkage model on a toy task.
std::unique_ptr<core::AdamelLinkage> TrainToyLinkage(uint64_t seed) {
  const data::PairDataset train = ToyDataset(60, seed);
  core::MelInputs inputs;
  inputs.source_train = &train;
  auto model = std::make_unique<core::AdamelLinkage>(
      core::AdamelVariant::kBase, FastConfig());
  const Status fitted = model->Fit(inputs);
  ADAMEL_CHECK(fitted.ok()) << fitted.ToString();
  return model;
}

data::PairDataset Slice(const data::PairDataset& dataset, int offset,
                        int count) {
  return data::PairSpan(dataset).Subspan(offset, count).ToDataset();
}

// ---------------------------------------------------------------- registry

TEST(ModelRegistryTest, RegisterGetLatestRemove) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Register("m", 1, nullptr).code(),
            StatusCode::kInvalidArgument);
  std::shared_ptr<const core::EntityLinkageModel> v1 = TrainToyLinkage(1);
  std::shared_ptr<const core::EntityLinkageModel> v2 = TrainToyLinkage(2);
  EXPECT_EQ(registry.Register("m", 0, v1).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(registry.Register("m", 1, v1).ok());
  ASSERT_TRUE(registry.Register("m", 2, v2).ok());
  EXPECT_EQ(registry.Register("m", 2, v2).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.size(), 2);

  ASSERT_TRUE(registry.Get("m", 1).ok());
  EXPECT_EQ(registry.Get("m", 1).value().get(), v1.get());
  // Version 0 resolves to the latest registered version.
  EXPECT_EQ(registry.Get("m").value().get(), v2.get());
  EXPECT_EQ(registry.Get("m", 3).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Get("other").status().code(), StatusCode::kNotFound);

  const std::vector<ModelInfo> listed = registry.List();
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].name, "m");
  EXPECT_EQ(listed[0].version, 1);
  EXPECT_EQ(listed[0].model_kind, "AdaMEL-base");

  EXPECT_TRUE(registry.Remove("m", 2));
  EXPECT_FALSE(registry.Remove("m", 2));
  EXPECT_EQ(registry.Get("m").value().get(), v1.get());
}

TEST(ModelRegistryTest, ResolveReportsConcreteVersion) {
  ModelRegistry registry;
  std::shared_ptr<const core::EntityLinkageModel> v1 = TrainToyLinkage(1);
  std::shared_ptr<const core::EntityLinkageModel> v3 = TrainToyLinkage(2);
  ASSERT_TRUE(registry.Register("m", 1, v1).ok());
  ASSERT_TRUE(registry.Register("m", 3, v3).ok());

  // Version 0 resolves to the latest and reports which version that is —
  // the number callers pin requests (and offline references) to.
  StatusOr<ResolvedModel> latest = registry.Resolve("m");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().model.get(), v3.get());
  EXPECT_EQ(latest.value().version, 3);

  StatusOr<ResolvedModel> pinned = registry.Resolve("m", 1);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned.value().model.get(), v1.get());
  EXPECT_EQ(pinned.value().version, 1);
  EXPECT_EQ(registry.Resolve("m", 2).status().code(),
            StatusCode::kNotFound);
}

TEST(ModelRegistryTest, PublishAllocatesNextVersionAtomically) {
  ModelRegistry registry;
  std::shared_ptr<const core::EntityLinkageModel> model = TrainToyLinkage(1);
  // First publish on an empty name starts at 1.
  StatusOr<int> first = registry.Publish("m", model);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 1);
  // Publishing after a sparse Register continues from the highest version.
  ASSERT_TRUE(registry.Register("m", 7, model).ok());
  StatusOr<int> next = registry.Publish("m", model);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 8);
  EXPECT_EQ(registry.Resolve("m").value().version, 8);
  EXPECT_EQ(registry.Publish("m", nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ModelRegistryTest, LatestDoesNotBleedAcrossNames) {
  // "a" has a high version; Get("b", 0) must not pick it up via the
  // upper_bound scan.
  ModelRegistry registry;
  std::shared_ptr<const core::EntityLinkageModel> model = TrainToyLinkage(3);
  ASSERT_TRUE(registry.Register("a", 7, model).ok());
  EXPECT_EQ(registry.Get("b").status().code(), StatusCode::kNotFound);
}

// Regression: a model type without checkpoint support must fail
// kFailedPrecondition — not kDataLoss — even when the file at the path is
// present and corrupt. The roster mistake is diagnosed before the file.
TEST(ModelRegistryTest, UnsupportedModelFailsPreconditionNotDataLoss) {
  const std::string path = TempPath("serve_unsupported.ckpt");
  ASSERT_TRUE(nn::AtomicWriteFile(path, "not a checkpoint").ok());

  ModelRegistry registry;
  ASSERT_FALSE(baselines::DeepMatcherModel().SupportsCheckpointing());
  const Status corrupt_file = registry.LoadFromCheckpoint(
      "dm", 1, std::make_unique<baselines::DeepMatcherModel>(), path);
  EXPECT_EQ(corrupt_file.code(), StatusCode::kFailedPrecondition);

  const Status missing_file = registry.LoadFromCheckpoint(
      "dm", 1, std::make_unique<baselines::DeepMatcherModel>(),
      TempPath("serve_does_not_exist.ckpt"));
  EXPECT_EQ(missing_file.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.size(), 0);
}

TEST(ModelRegistryTest, MissingCheckpointFileIsNotFound) {
  ModelRegistry registry;
  const Status loaded = registry.LoadFromCheckpoint(
      "adamel", 1,
      std::make_unique<core::AdamelLinkage>(core::AdamelVariant::kBase,
                                            FastConfig()),
      TempPath("serve_missing.ckpt"));
  EXPECT_EQ(loaded.code(), StatusCode::kNotFound);
}

TEST(ModelRegistryTest, CorruptCheckpointFileIsDataLoss) {
  const std::string path = TempPath("serve_corrupt.ckpt");
  std::unique_ptr<core::AdamelLinkage> trained = TrainToyLinkage(4);
  ASSERT_TRUE(trained->SaveCheckpoint(path).ok());
  StatusOr<std::string> bytes = nn::ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = std::move(bytes).value();
  ASSERT_GT(corrupted.size(), 64u);
  corrupted[corrupted.size() / 2] ^= 0x40;
  ASSERT_TRUE(nn::AtomicWriteFile(path, corrupted).ok());

  ModelRegistry registry;
  const Status loaded = registry.LoadFromCheckpoint(
      "adamel", 1,
      std::make_unique<core::AdamelLinkage>(core::AdamelVariant::kBase,
                                            FastConfig()),
      path);
  EXPECT_EQ(loaded.code(), StatusCode::kDataLoss);
}

TEST(ModelRegistryTest, WrongModelKindCheckpointIsDataLoss) {
  // A TLER model handed an AdaMEL checkpoint: the file exists and is intact,
  // but is unusable for this model — kDataLoss, not kFailedPrecondition.
  const std::string path = TempPath("serve_wrong_kind.ckpt");
  ASSERT_TRUE(TrainToyLinkage(5)->SaveCheckpoint(path).ok());

  ModelRegistry registry;
  const Status loaded = registry.LoadFromCheckpoint(
      "tler", 1, std::make_unique<baselines::TlerModel>(), path);
  EXPECT_EQ(loaded.code(), StatusCode::kDataLoss);
}

TEST(ModelRegistryTest, CheckpointRoundTripServesIdenticalScores) {
  const std::string path = TempPath("serve_roundtrip.ckpt");
  std::unique_ptr<core::AdamelLinkage> trained = TrainToyLinkage(6);
  const data::PairDataset test = ToyDataset(25, 7);
  const std::vector<float> offline = trained->ScorePairs(test).value();
  ASSERT_TRUE(trained->SaveCheckpoint(path).ok());

  ModelRegistry registry;
  ASSERT_TRUE(registry
                  .LoadFromCheckpoint(
                      "adamel", 1,
                      std::make_unique<core::AdamelLinkage>(
                          core::AdamelVariant::kBase, FastConfig()),
                      path)
                  .ok());
  const auto model = registry.Get("adamel");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value()->ScorePairs(test).value(), offline);
}

// ----------------------------------------------------------------- batcher

BatcherOptions PumpOptions() {
  BatcherOptions options;
  options.worker_threads = 0;  // nothing runs until RunOnce()
  return options;
}

TEST(MicroBatcherTest, EmptyAndNullRequestsResolveImmediately) {
  MicroBatcher batcher(PumpOptions());
  BatchWorkItem null_model;
  null_model.pairs = ToyDataset(3, 8);
  EXPECT_EQ(batcher.Submit(std::move(null_model)).get().status.code(),
            StatusCode::kInvalidArgument);

  std::shared_ptr<const core::EntityLinkageModel> model = TrainToyLinkage(8);
  BatchWorkItem empty;
  empty.model = model;
  ScoreResponse response = batcher.Submit(std::move(empty)).get();
  EXPECT_TRUE(response.status.ok());
  EXPECT_TRUE(response.scores.empty());
  EXPECT_EQ(batcher.stats().submitted, 0);
}

TEST(MicroBatcherTest, DeadlineExpiredAtSubmit) {
  obs::ScopedFakeClock clock;
  clock.Set(5'000);
  MicroBatcher batcher(PumpOptions());
  std::shared_ptr<const core::EntityLinkageModel> model = TrainToyLinkage(9);

  BatchWorkItem item;
  item.model = model;
  item.pairs = ToyDataset(4, 10);
  item.deadline_ns = 4'000;  // already in the past
  EXPECT_EQ(batcher.Submit(std::move(item)).get().status.code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(batcher.stats().timed_out, 1);
  EXPECT_EQ(batcher.stats().submitted, 0);
}

TEST(MicroBatcherTest, DeadlineExpiresInQueue) {
  obs::ScopedFakeClock clock;
  MicroBatcher batcher(PumpOptions());
  std::shared_ptr<const core::EntityLinkageModel> model = TrainToyLinkage(11);

  BatchWorkItem item;
  item.model = model;
  item.pairs = ToyDataset(4, 12);
  item.deadline_ns = 1'000;
  std::future<ScoreResponse> future = batcher.Submit(std::move(item));
  EXPECT_EQ(batcher.queued_pairs(), 4);

  clock.Advance(2'000);  // the request expires while queued
  EXPECT_EQ(batcher.RunOnce(), 1);
  const ScoreResponse response = future.get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(response.queue_ns, 2'000);
  EXPECT_EQ(batcher.stats().timed_out, 1);
  EXPECT_EQ(batcher.stats().pairs_scored, 0);
}

TEST(MicroBatcherTest, BackpressureRejectsWhenQueueFull) {
  BatcherOptions options = PumpOptions();
  options.max_queue_pairs = 10;
  MicroBatcher batcher(options);
  std::shared_ptr<const core::EntityLinkageModel> model = TrainToyLinkage(13);
  const data::PairDataset six = ToyDataset(6, 14);

  BatchWorkItem first;
  first.model = model;
  first.pairs = six;
  std::future<ScoreResponse> admitted = batcher.Submit(std::move(first));

  BatchWorkItem second;
  second.model = model;
  second.pairs = six;  // 6 + 6 > 10: rejected
  EXPECT_EQ(batcher.Submit(std::move(second)).get().status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(batcher.stats().rejected, 1);

  // Draining the queue frees capacity again.
  EXPECT_EQ(batcher.RunOnce(), 1);
  EXPECT_TRUE(admitted.get().status.ok());
  BatchWorkItem third;
  third.model = model;
  third.pairs = six;
  std::future<ScoreResponse> readmitted = batcher.Submit(std::move(third));
  EXPECT_EQ(batcher.queued_pairs(), 6);
  EXPECT_EQ(batcher.RunOnce(), 1);
  EXPECT_TRUE(readmitted.get().status.ok());
}

TEST(MicroBatcherTest, CoalescedScoresAreBitwiseIdenticalToOffline) {
  std::shared_ptr<const core::AdamelLinkage> model = TrainToyLinkage(15);
  const data::PairDataset test = ToyDataset(30, 16);
  const std::vector<float> offline = model->ScorePairs(test).value();

  MicroBatcher batcher(PumpOptions());
  // Three requests slicing the same test set; one RunOnce must coalesce
  // them into a single forward pass.
  const int cuts[4] = {0, 11, 17, 30};
  std::vector<std::future<ScoreResponse>> futures;
  for (int i = 0; i < 3; ++i) {
    BatchWorkItem item;
    item.model = model;
    item.pairs = Slice(test, cuts[i], cuts[i + 1] - cuts[i]);
    futures.push_back(batcher.Submit(std::move(item)));
  }
  EXPECT_EQ(batcher.RunOnce(), 3);

  for (int i = 0; i < 3; ++i) {
    ScoreResponse response = futures[i].get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.batch_pairs, 30);
    const std::vector<float> expected(offline.begin() + cuts[i],
                                      offline.begin() + cuts[i + 1]);
    EXPECT_EQ(response.scores, expected) << "request " << i;
  }
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.coalesced_requests, 3);
  EXPECT_EQ(stats.pairs_scored, 30);
  EXPECT_EQ(stats.max_batch_pairs, 30);
}

TEST(MicroBatcherTest, MaxBatchPairsSplitsBatches) {
  std::shared_ptr<const core::EntityLinkageModel> model = TrainToyLinkage(17);
  const data::PairDataset test = ToyDataset(20, 18);

  BatcherOptions options = PumpOptions();
  options.max_batch_pairs = 10;
  MicroBatcher batcher(options);
  std::vector<std::future<ScoreResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    BatchWorkItem item;
    item.model = model;
    item.pairs = Slice(test, 5 * i, 5);
    futures.push_back(batcher.Submit(std::move(item)));
  }
  EXPECT_EQ(batcher.RunOnce(), 2);  // 5 + 5 fills the 10-pair cap
  EXPECT_EQ(batcher.RunOnce(), 2);
  for (auto& future : futures) {
    ScoreResponse response = future.get();
    EXPECT_TRUE(response.status.ok());
    EXPECT_EQ(response.batch_pairs, 10);
  }
  EXPECT_EQ(batcher.stats().batches, 2);
}

TEST(MicroBatcherTest, ShutdownDrainsQueuedRequests) {
  std::shared_ptr<const core::EntityLinkageModel> model = TrainToyLinkage(19);
  auto batcher = std::make_unique<MicroBatcher>(PumpOptions());
  BatchWorkItem item;
  item.model = model;
  item.pairs = ToyDataset(5, 20);
  std::future<ScoreResponse> future = batcher->Submit(std::move(item));
  batcher.reset();  // destructor must fulfill the promise
  EXPECT_TRUE(future.get().status.ok());
}

// Regression: the batch window used to shrink to the *head's* deadline
// only, so a coalesced joiner with a tighter deadline expired while the
// window was held open on the head's (here: unlimited) budget. The window
// must close deadline_slack_ns before the tightest member deadline.
TEST(MicroBatcherTest, TightDeadlineJoinerClosesBatchWindow) {
  obs::ScopedFakeClock clock;  // outlives the batcher and its worker
  BatcherOptions options;
  options.worker_threads = 1;
  options.max_batch_delay_ns = 50'000'000;  // 50 ms: head holds a long window
  MicroBatcher batcher(options);
  std::shared_ptr<const core::EntityLinkageModel> model = TrainToyLinkage(34);
  const data::PairDataset test = ToyDataset(4, 35);

  BatchWorkItem head;
  head.model = model;
  head.pairs = Slice(test, 0, 2);  // no deadline
  std::future<ScoreResponse> head_future = batcher.Submit(std::move(head));
  // Fake time stands still, so the worker sits inside the head's batch
  // window re-scanning the queue; wait until it has pulled the head.
  for (int i = 0; i < 5000 && batcher.inflight_pairs() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(batcher.inflight_pairs(), 2);

  BatchWorkItem joiner;
  joiner.model = model;
  joiner.pairs = Slice(test, 2, 2);
  joiner.deadline_ns = 1'000'000;  // 1 ms, far tighter than the open window
  std::future<ScoreResponse> joiner_future =
      batcher.Submit(std::move(joiner));
  for (int i = 0; i < 5000 && batcher.inflight_pairs() < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(batcher.inflight_pairs(), 4);

  // Past the shrunken window close (deadline - slack) but before the
  // joiner's deadline: the batch must execute now, with both requests
  // scored, instead of holding until the 50 ms window expires the joiner.
  clock.Advance(1'000'000 - options.deadline_slack_ns / 2);
  ASSERT_EQ(joiner_future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  ASSERT_EQ(head_future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  const ScoreResponse joined = joiner_future.get();
  EXPECT_TRUE(joined.status.ok()) << joined.status.ToString();
  EXPECT_EQ(joined.batch_pairs, 4);  // it did coalesce with the head
  EXPECT_TRUE(head_future.get().status.ok());
  EXPECT_EQ(batcher.stats().timed_out, 0);
}

// Scores every pair 0.5 after blocking until Release(); lets a test hold a
// collected batch in the executing state.
class BlockingModel : public core::EntityLinkageModel {
 public:
  std::string Name() const override { return "blocking-stub"; }
  Status Fit(const core::MelInputs& /*inputs*/) override { return OkStatus(); }
  int64_t ParameterCount() const override { return 0; }

  StatusOr<std::vector<float>> ScorePairs(
      data::PairSpan batch) const override {
    std::unique_lock<std::mutex> lock(mutex_);
    ++scoring_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
    return std::vector<float>(static_cast<size_t>(batch.size()), 0.5f);
  }

  void WaitUntilScoring() const {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return scoring_ > 0; });
  }
  void Release() const {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;  // sticky: later batches score without blocking
    }
    cv_.notify_all();
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  mutable int scoring_ = 0;
  mutable bool released_ = false;
};

// Regression: admission used to count only *queued* pairs, so pairs pulled
// into a collected-but-unfinished batch vanished from the gate and a burst
// could hold ~workers x max_batch_pairs extra pairs. The true bound is
// queued + in-flight <= max_queue_pairs.
TEST(MicroBatcherTest, AdmissionBoundCountsInFlightPairs) {
  auto blocking = std::make_shared<BlockingModel>();
  BatcherOptions options = PumpOptions();
  options.max_queue_pairs = 10;
  MicroBatcher batcher(options);
  const data::PairDataset six = ToyDataset(6, 36);

  BatchWorkItem first;
  first.model = blocking;
  first.pairs = six;
  std::future<ScoreResponse> admitted = batcher.Submit(std::move(first));
  std::thread pump([&batcher] { EXPECT_EQ(batcher.RunOnce(), 1); });
  blocking->WaitUntilScoring();
  // The batch is executing: nothing queued, six pairs in flight — and they
  // still count against the admission bound.
  EXPECT_EQ(batcher.queued_pairs(), 0);
  EXPECT_EQ(batcher.inflight_pairs(), 6);
  BatchWorkItem second;
  second.model = blocking;
  second.pairs = six;  // 6 in flight + 6 > 10: rejected
  EXPECT_EQ(batcher.Submit(std::move(second)).get().status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(batcher.stats().rejected, 1);

  blocking->Release();
  pump.join();
  EXPECT_TRUE(admitted.get().status.ok());
  EXPECT_EQ(batcher.inflight_pairs(), 0);
  // Finishing the batch frees the capacity its pairs held.
  BatchWorkItem third;
  third.model = blocking;
  third.pairs = six;
  std::future<ScoreResponse> readmitted = batcher.Submit(std::move(third));
  EXPECT_EQ(batcher.RunOnce(), 1);
  EXPECT_TRUE(readmitted.get().status.ok());
}

// Scoring always fails; the batch must show up in BatcherStats::failed.
class FailingModel : public core::EntityLinkageModel {
 public:
  std::string Name() const override { return "failing-stub"; }
  Status Fit(const core::MelInputs& /*inputs*/) override { return OkStatus(); }
  int64_t ParameterCount() const override { return 0; }
  StatusOr<std::vector<float>> ScorePairs(
      data::PairSpan /*batch*/) const override {
    return InternalError("forward pass exploded");
  }
};

TEST(MicroBatcherTest, FailedBatchesAreCountedInStats) {
  MicroBatcher batcher(PumpOptions());
  BatchWorkItem item;
  item.model = std::make_shared<FailingModel>();
  item.pairs = ToyDataset(3, 37);
  std::future<ScoreResponse> future = batcher.Submit(std::move(item));
  EXPECT_EQ(batcher.RunOnce(), 1);
  EXPECT_EQ(future.get().status.code(), StatusCode::kInternal);
  const BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.pairs_scored, 0);
  EXPECT_EQ(batcher.inflight_pairs(), 0);
}

// ----------------------------------------------------------------- service

TEST(LinkageServiceTest, UnknownModelFailsFastWithNotFound) {
  ServiceOptions options;
  options.batcher.worker_threads = 0;
  LinkageService service(options);
  ScoreRequest request;
  request.model = "nope";
  request.pairs = ToyDataset(3, 21);
  EXPECT_EQ(service.SubmitAsync(std::move(request)).get().status.code(),
            StatusCode::kNotFound);
}

TEST(LinkageServiceTest, PumpModeScoresMatchOffline) {
  std::shared_ptr<const core::AdamelLinkage> model = TrainToyLinkage(22);
  const data::PairDataset test = ToyDataset(12, 23);
  const std::vector<float> offline = model->ScorePairs(test).value();

  ServiceOptions options;
  options.batcher.worker_threads = 0;
  LinkageService service(options);
  ASSERT_TRUE(service.registry().Register("adamel", 1, model).ok());

  ScoreRequest request;
  request.model = "adamel";
  request.pairs = test;
  std::future<ScoreResponse> future = service.SubmitAsync(std::move(request));
  EXPECT_EQ(service.PumpOnce(), 1);
  EXPECT_EQ(future.get().scores, offline);
}

// Regression: deterministic pump mode composed with the adaptive
// controller. Under a backlog deeper than `max_batch_pairs` the effective
// pair cap widens toward `adaptive_max_batch_pairs`, so the same three
// requests drain in two batches instead of three — with scores still
// bitwise the offline reference. Pinned by exact batch counts so a change
// to the controller's widening rule fails loudly here.
TEST(LinkageServiceTest, PumpModeWithAdaptiveControllerWidensBatches) {
  obs::ScopedFakeClock clock;
  std::shared_ptr<const core::AdamelLinkage> model = TrainToyLinkage(34);
  const data::PairDataset test = ToyDataset(300, 35);
  const std::vector<float> offline = model->ScorePairs(test).value();

  const auto run = [&](bool adaptive) -> std::pair<int64_t, bool> {
    ServiceOptions options;
    options.batcher.worker_threads = 0;
    options.batcher.max_batch_pairs = 128;
    options.batcher.adaptive = adaptive;
    options.batcher.adaptive_max_batch_pairs = 256;
    LinkageService service(options);
    ADAMEL_CHECK(service.registry().Register("adamel", 1, model).ok());

    std::vector<std::future<ScoreResponse>> futures;
    for (int i = 0; i < 3; ++i) {
      ScoreRequest request;
      request.model = "adamel";
      request.pairs = Slice(test, 100 * i, 100);
      futures.push_back(service.SubmitAsync(std::move(request)));
    }
    while (service.PumpOnce() > 0) {
    }
    bool bitwise = true;
    for (int i = 0; i < 3; ++i) {
      const ScoreResponse response = futures[i].get();
      ADAMEL_CHECK(response.status.ok()) << response.status.ToString();
      const std::vector<float> expected(offline.begin() + 100 * i,
                                        offline.begin() + 100 * (i + 1));
      bitwise = bitwise && response.scores == expected;
    }
    return {service.stats().batches, bitwise};
  };

  const std::pair<int64_t, bool> fixed = run(/*adaptive=*/false);
  const std::pair<int64_t, bool> adaptive = run(/*adaptive=*/true);
  // Fixed cap 128: each 100-pair request runs alone. Adaptive with a
  // 300-pair backlog: cap widens to 256, so 100+100 coalesce, then 100.
  EXPECT_EQ(fixed.first, 3);
  EXPECT_EQ(adaptive.first, 2);
  EXPECT_TRUE(fixed.second);
  EXPECT_TRUE(adaptive.second);
}

TEST(LinkageServiceTest, WorkerThreadsServeBitwiseIdenticalScores) {
  std::shared_ptr<const core::AdamelLinkage> model = TrainToyLinkage(24);
  const data::PairDataset test = ToyDataset(40, 25);
  const std::vector<float> offline = model->ScorePairs(test).value();

  ServiceOptions options;
  options.batcher.worker_threads = 2;
  LinkageService service(options);
  ASSERT_TRUE(service.registry().Register("adamel", 1, model).ok());

  std::vector<std::future<ScoreResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    ScoreRequest request;
    request.model = "adamel";
    request.pairs = Slice(test, 5 * i, 5);
    futures.push_back(service.SubmitAsync(std::move(request)));
  }
  for (int i = 0; i < 8; ++i) {
    ScoreResponse response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    const std::vector<float> expected(offline.begin() + 5 * i,
                                      offline.begin() + 5 * (i + 1));
    EXPECT_EQ(response.scores, expected) << "request " << i;
  }
  EXPECT_EQ(service.stats().pairs_scored, 40);
}

// ------------------------------------------------------- quantized routing

TEST(LinkageServiceTest, QuantizedRequestRoutesToQuantizedPath) {
  std::unique_ptr<core::AdamelLinkage> trained = TrainToyLinkage(26);
  const data::PairDataset calibration = ToyDataset(40, 27);
  ASSERT_TRUE(
      trained->EnableQuantizedScoring(data::PairSpan(calibration)).ok());
  std::shared_ptr<const core::AdamelLinkage> model = std::move(trained);
  const data::PairDataset test = ToyDataset(12, 28);
  const std::vector<float> offline_fp32 = model->ScorePairs(test).value();
  const std::vector<float> offline_q =
      model->ScorePairsQuantized(test).value();

  ServiceOptions options;
  options.batcher.worker_threads = 0;
  LinkageService service(options);
  ASSERT_TRUE(service.registry().Register("adamel", 1, model).ok());

  ScoreRequest request;
  request.model = "adamel";
  request.pairs = test;
  request.quantized = true;
  std::future<ScoreResponse> future = service.SubmitAsync(std::move(request));
  EXPECT_EQ(service.PumpOnce(), 1);
  const ScoreResponse response = future.get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  // Served quantized scores are bitwise the offline quantized ones — and
  // genuinely different arithmetic from fp32 (sanity check the routing).
  EXPECT_EQ(response.scores, offline_q);
  EXPECT_NE(response.scores, offline_fp32);
}

TEST(LinkageServiceTest, QuantizedAndFp32RequestsNeverShareABatch) {
  std::unique_ptr<core::AdamelLinkage> trained = TrainToyLinkage(29);
  ASSERT_TRUE(
      trained->EnableQuantizedScoring(data::PairSpan(ToyDataset(40, 30)))
          .ok());
  std::shared_ptr<const core::AdamelLinkage> model = std::move(trained);
  const data::PairDataset test = ToyDataset(10, 31);
  const std::vector<float> offline_fp32 = model->ScorePairs(test).value();
  const std::vector<float> offline_q =
      model->ScorePairsQuantized(test).value();

  ServiceOptions options;
  options.batcher.worker_threads = 0;
  options.batcher.max_batch_pairs = 64;  // both would fit in one batch
  LinkageService service(options);
  ASSERT_TRUE(service.registry().Register("adamel", 1, model).ok());

  std::vector<std::future<ScoreResponse>> futures;
  for (const bool quantized : {false, true}) {
    ScoreRequest request;
    request.model = "adamel";
    request.pairs = test;
    request.quantized = quantized;
    futures.push_back(service.SubmitAsync(std::move(request)));
  }
  while (service.PumpOnce() > 0) {
  }
  // Same model, same schema, but different scoring mode: the coalescing
  // key keeps them apart, so each run through its own forward pass.
  EXPECT_EQ(service.stats().batches, 2);
  EXPECT_EQ(futures[0].get().scores, offline_fp32);
  EXPECT_EQ(futures[1].get().scores, offline_q);
}

TEST(LinkageServiceTest, QuantizedWithoutSupportFailsFastAtSubmission) {
  std::shared_ptr<const core::AdamelLinkage> model = TrainToyLinkage(32);
  ASSERT_FALSE(model->SupportsQuantizedScoring());

  ServiceOptions options;
  options.batcher.worker_threads = 0;
  LinkageService service(options);
  ASSERT_TRUE(service.registry().Register("adamel", 1, model).ok());

  ScoreRequest request;
  request.model = "adamel";
  request.pairs = ToyDataset(4, 33);
  request.quantized = true;
  // Resolves immediately — no pump needed — with a typed error.
  EXPECT_EQ(service.SubmitAsync(std::move(request)).get().status.code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.stats().submitted, 0);
  // A precondition fast-fail is an erroneous outcome, not a silent drop:
  // it must land in `failed` so the offered = completed + missed + shed +
  // failed accounting identity holds for load metrics.
  EXPECT_EQ(service.stats().failed, 1);
}

// TSan concurrency suite: N client threads hammer M models through one
// service while another thread mutates the registry. Run under
// ADAMEL_SANITIZE=thread in CI.
TEST(LinkageServiceTest, ConcurrentClientsAcrossModels) {
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 6;

  std::shared_ptr<const core::AdamelLinkage> model_a = TrainToyLinkage(26);
  std::shared_ptr<const core::AdamelLinkage> model_b = TrainToyLinkage(27);
  const data::PairDataset test = ToyDataset(24, 28);
  const std::vector<float> offline_a = model_a->ScorePairs(test).value();
  const std::vector<float> offline_b = model_b->ScorePairs(test).value();

  ServiceOptions options;
  options.batcher.worker_threads = 3;
  options.batcher.max_batch_pairs = 16;
  LinkageService service(options);
  ASSERT_TRUE(service.registry().Register("a", 1, model_a).ok());
  ASSERT_TRUE(service.registry().Register("b", 1, model_b).ok());

  std::vector<std::vector<ScoreResponse>> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([c, &service, &test, &responses] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        ScoreRequest request;
        request.model = (c + r) % 2 == 0 ? "a" : "b";
        request.pairs = Slice(test, 4 * ((c + r) % 6), 4);
        responses[c].push_back(service.Score(std::move(request)));
      }
    });
  }
  // Registry churn while requests are in flight: a later version appears,
  // in-flight requests keep their resolved model alive.
  std::thread churn([&service, &model_a] {
    ASSERT_TRUE(service.registry().Register("a", 2, model_a).ok());
    service.registry().Remove("a", 2);
  });
  for (std::thread& client : clients) {
    client.join();
  }
  churn.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(), static_cast<size_t>(kRequestsPerClient));
    for (int r = 0; r < kRequestsPerClient; ++r) {
      const ScoreResponse& response = responses[c][r];
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      const std::vector<float>& offline =
          (c + r) % 2 == 0 ? offline_a : offline_b;
      const int offset = 4 * ((c + r) % 6);
      const std::vector<float> expected(offline.begin() + offset,
                                        offline.begin() + offset + 4);
      EXPECT_EQ(response.scores, expected);
    }
  }
  const BatcherStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kRequestsPerClient);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.timed_out, 0);
}

// ---------------------------------------------------------- Fit validation

TEST(FitValidationTest, NullSourceTrainIsInvalidArgument) {
  core::AdamelLinkage linkage(core::AdamelVariant::kBase, FastConfig());
  core::MelInputs inputs;  // source_train left null
  EXPECT_EQ(linkage.Fit(inputs).code(), StatusCode::kInvalidArgument);
}

TEST(FitValidationTest, EmptySourceTrainIsInvalidArgument) {
  core::AdamelLinkage linkage(core::AdamelVariant::kBase, FastConfig());
  const data::PairDataset empty(data::Schema({"key", "noise"}));
  core::MelInputs inputs;
  inputs.source_train = &empty;
  EXPECT_EQ(linkage.Fit(inputs).code(), StatusCode::kInvalidArgument);
}

TEST(FitValidationTest, HybWithoutTargetOrSupportIsInvalidArgument) {
  core::AdamelLinkage linkage(core::AdamelVariant::kHyb, FastConfig());
  const data::PairDataset train = ToyDataset(10, 29);
  core::MelInputs inputs;
  inputs.source_train = &train;  // kHyb also needs target + support
  EXPECT_EQ(linkage.Fit(inputs).code(), StatusCode::kInvalidArgument);
}

TEST(FitValidationTest, BaselinesValidateInputsToo) {
  baselines::TlerModel tler;
  core::MelInputs inputs;
  EXPECT_EQ(tler.Fit(inputs).code(), StatusCode::kInvalidArgument);
  baselines::DeepMatcherModel deepmatcher;
  EXPECT_EQ(deepmatcher.Fit(inputs).code(), StatusCode::kInvalidArgument);
}

TEST(FitValidationTest, ScoreBeforeFitIsFailedPrecondition) {
  const core::AdamelLinkage unfitted(core::AdamelVariant::kBase);
  EXPECT_EQ(unfitted.ScorePairs(ToyDataset(3, 30)).status().code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------------ 1:N search

data::Record GalleryRecord(int i, const std::string& key) {
  data::Record record;
  record.id = "gal" + std::to_string(i);
  record.source = "gallery";
  record.values = {key, "noise" + std::to_string(i % 4)};
  return record;
}

// Enrolled population sharing the key vocabulary of ToyDataset, so trained
// toy models produce meaningful re-rank scores.
std::shared_ptr<const gallery::Gallery> BuildToyGallery(
    std::vector<data::Record>* out_records) {
  gallery::GalleryOptions options;
  options.embedding.dim = 32;
  options.num_shards = 4;
  auto built =
      gallery::Gallery::Create(data::Schema({"key", "noise"}), options)
          .value();
  std::vector<data::Record> records;
  for (int i = 0; i < 40; ++i) {
    records.push_back(GalleryRecord(i, "key" + std::to_string(i % 20)));
  }
  ADAMEL_CHECK(built->Enroll(records).ok());
  if (out_records != nullptr) {
    *out_records = std::move(records);
  }
  return std::shared_ptr<const gallery::Gallery>(std::move(built));
}

TEST(SearchAsyncTest, WithoutGalleryIsFailedPrecondition) {
  ServiceOptions options;
  options.batcher.worker_threads = 0;
  LinkageService service(options);
  EXPECT_EQ(service.gallery(), nullptr);
  SearchRequest request;
  request.model = "adamel";
  request.query = GalleryRecord(0, "key1");
  EXPECT_EQ(service.SearchAsync(std::move(request)).get().status.code(),
            StatusCode::kFailedPrecondition);
}

TEST(SearchAsyncTest, UnknownModelFailsFastWithNotFound) {
  ServiceOptions options;
  options.batcher.worker_threads = 0;
  options.gallery = BuildToyGallery(nullptr);
  LinkageService service(options);
  SearchRequest request;
  request.model = "nope";
  request.query = GalleryRecord(0, "key1");
  EXPECT_EQ(service.SearchAsync(std::move(request)).get().status.code(),
            StatusCode::kNotFound);
}

TEST(SearchAsyncTest, ValidatesKAgainstProbeK) {
  ServiceOptions options;
  options.batcher.worker_threads = 0;
  options.gallery = BuildToyGallery(nullptr);
  LinkageService service(options);
  ASSERT_TRUE(service.registry().Register("adamel", 1, TrainToyLinkage(61))
                  .ok());
  SearchRequest request;
  request.model = "adamel";
  request.query = GalleryRecord(0, "key1");
  request.k = 10;
  request.probe_k = 5;  // probe fewer than we return: nonsensical
  EXPECT_EQ(service.SearchAsync(std::move(request)).get().status.code(),
            StatusCode::kInvalidArgument);
}

TEST(SearchAsyncTest, EmptyProbeResolvesImmediatelyWithoutABatch) {
  ServiceOptions options;
  options.batcher.worker_threads = 0;  // pump mode, and we never pump
  options.gallery = BuildToyGallery(nullptr);
  LinkageService service(options);
  ASSERT_TRUE(service.registry().Register("adamel", 1, TrainToyLinkage(62))
                  .ok());
  SearchRequest request;
  request.model = "adamel";
  // Neither attribute shares a token with any enrolled record, so the index
  // probe comes back empty and no batch is ever submitted.
  request.query = GalleryRecord(0, "zzzunique");
  request.query.values[1] = "qqqunique";
  const SearchResponse response = service.SearchAsync(std::move(request)).get();
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.candidates.empty());
  EXPECT_EQ(response.batch_pairs, 0);
  EXPECT_EQ(response.served_version, 1);
}

TEST(SearchAsyncTest, ServedScoresAreBitwiseIdenticalToOfflineScorePairs) {
  std::vector<data::Record> enrolled;
  std::shared_ptr<const gallery::Gallery> gal = BuildToyGallery(&enrolled);
  std::shared_ptr<const core::AdamelLinkage> model = TrainToyLinkage(63);

  ServiceOptions options;
  options.batcher.worker_threads = 0;
  options.gallery = gal;
  LinkageService service(options);
  ASSERT_TRUE(service.registry().Register("adamel", 3, model).ok());

  SearchRequest request;
  request.model = "adamel";
  request.query = GalleryRecord(999, "key7");
  request.k = 5;
  request.probe_k = 16;
  const data::Record query = request.query;
  std::future<SearchResponse> future = service.SearchAsync(std::move(request));
  EXPECT_EQ(service.PumpOnce(), 1);
  const SearchResponse response = future.get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_FALSE(response.candidates.empty());
  ASSERT_LE(response.candidates.size(), 5u);
  EXPECT_EQ(response.served_version, 3);
  EXPECT_GT(response.batch_pairs, 0);

  for (size_t i = 0; i < response.candidates.size(); ++i) {
    const gallery::Candidate& candidate = response.candidates[i];
    if (i > 0) {
      EXPECT_GE(response.candidates[i - 1].score, candidate.score);
    }
    // The bitwise contract: the served score equals scoring this exact
    // (query, enrolled record) pair through ScorePairs offline.
    data::PairDataset offline(gal->schema());
    data::LabeledPair pair;
    pair.left = query;
    pair.right = gal->GetRecord(candidate.index).value();
    offline.Add(std::move(pair));
    EXPECT_EQ(candidate.score, model->ScorePairs(offline).value()[0])
        << "candidate " << i << " (" << candidate.id << ")";
  }
}

TEST(SearchAsyncTest, WorkerModeSearchesConcurrently) {
  std::vector<data::Record> enrolled;
  std::shared_ptr<const gallery::Gallery> gal = BuildToyGallery(&enrolled);
  std::shared_ptr<const core::AdamelLinkage> model = TrainToyLinkage(64);

  ServiceOptions options;
  options.batcher.worker_threads = 2;
  options.gallery = gal;
  LinkageService service(options);
  ASSERT_TRUE(service.registry().Register("adamel", 1, model).ok());

  std::vector<std::future<SearchResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    SearchRequest request;
    request.model = "adamel";
    request.query = GalleryRecord(100 + i, "key" + std::to_string(i % 20));
    request.k = 3;
    request.probe_k = 8;
    futures.push_back(service.SearchAsync(std::move(request)));
  }
  for (int i = 0; i < 8; ++i) {
    const SearchResponse response = futures[i].get();
    ASSERT_TRUE(response.status.ok())
        << "search " << i << ": " << response.status.ToString();
    EXPECT_LE(response.candidates.size(), 3u);
  }
}

}  // namespace
}  // namespace adamel::serve
