// Lifecycle conformance suite for src/serve/lifecycle: proves that under
// sustained load no request is dropped, scored by a torn model, or blows
// its deadline because of a hot-swap — and that the golden-band and
// probation rollbacks fire when they should. Deterministic scenarios run
// on a fake clock in pump mode; the concurrency scenarios run with real
// worker threads and are exercised under TSan in CI.

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/trainer.h"
#include "obs/clock.h"
#include "serve/lifecycle.h"
#include "serve/registry.h"
#include "serve/service.h"

namespace adamel::serve {
namespace {

data::Record MakeRecord(std::vector<std::string> values) {
  data::Record record;
  record.id = "r";
  record.source = "s";
  record.values = std::move(values);
  return record;
}

data::LabeledPair MakePair(std::vector<std::string> left,
                           std::vector<std::string> right, int label) {
  data::LabeledPair pair;
  pair.left = MakeRecord(std::move(left));
  pair.right = MakeRecord(std::move(right));
  pair.label = label;
  return pair;
}

// Pairs match iff the "key" attribute shares its token.
data::PairDataset ToyDataset(int n, uint64_t seed) {
  Rng rng(seed);
  data::PairDataset dataset(data::Schema({"key", "noise"}));
  for (int i = 0; i < n; ++i) {
    const bool match = rng.Bernoulli(0.5);
    const std::string key = "key" + std::to_string(rng.UniformInt(50));
    const std::string other =
        match ? key : "key" + std::to_string(rng.UniformInt(50) + 50);
    dataset.Add(MakePair({key, "blah" + std::to_string(rng.UniformInt(9))},
                         {other, "blub" + std::to_string(rng.UniformInt(9))},
                         match ? data::kMatch : data::kNonMatch));
  }
  return dataset;
}

// Same generator with the labels flipped: a model trained on this scores
// roughly inverted relative to a healthy one — far outside any sane
// golden band. Stands in for a corrupted / mis-trained candidate.
data::PairDataset InvertedToyDataset(int n, uint64_t seed) {
  Rng rng(seed);
  data::PairDataset dataset(data::Schema({"key", "noise"}));
  for (int i = 0; i < n; ++i) {
    const bool match = rng.Bernoulli(0.5);
    const std::string key = "key" + std::to_string(rng.UniformInt(50));
    const std::string other =
        match ? key : "key" + std::to_string(rng.UniformInt(50) + 50);
    dataset.Add(MakePair({key, "blah" + std::to_string(rng.UniformInt(9))},
                         {other, "blub" + std::to_string(rng.UniformInt(9))},
                         match ? data::kNonMatch : data::kMatch));
  }
  return dataset;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

core::AdamelConfig FastConfig() {
  core::AdamelConfig config;
  config.epochs = 2;
  return config;
}

std::unique_ptr<core::AdamelLinkage> TrainToyLinkage(uint64_t seed) {
  const data::PairDataset train = ToyDataset(60, seed);
  core::MelInputs inputs;
  inputs.source_train = &train;
  auto model = std::make_unique<core::AdamelLinkage>(
      core::AdamelVariant::kBase, FastConfig());
  const Status fitted = model->Fit(inputs);
  ADAMEL_CHECK(fitted.ok()) << fitted.ToString();
  return model;
}

// Trains on the label-inverted task, long enough to commit to the wrong
// decision boundary: the resulting scores disagree strongly with any
// healthy model's.
std::unique_ptr<core::AdamelLinkage> TrainCorruptedLinkage(uint64_t seed) {
  const data::PairDataset train = InvertedToyDataset(120, seed);
  core::MelInputs inputs;
  inputs.source_train = &train;
  core::AdamelConfig config;
  config.epochs = 12;
  auto model = std::make_unique<core::AdamelLinkage>(
      core::AdamelVariant::kBase, config);
  const Status fitted = model->Fit(inputs);
  ADAMEL_CHECK(fitted.ok()) << fitted.ToString();
  return model;
}

// A candidate with bitwise-identical scores to `donor`: the donor's
// checkpoint loaded into a fresh AdamelLinkage. This is the healthy-
// upgrade stand-in — mean |score delta| is exactly 0, well inside the band.
std::shared_ptr<const core::EntityLinkageModel> CheckpointCopy(
    const core::AdamelLinkage& donor, const std::string& name) {
  const std::string path = TempPath(name);
  ADAMEL_CHECK(donor.SaveCheckpoint(path).ok());
  auto copy = std::make_unique<core::AdamelLinkage>(
      core::AdamelVariant::kBase, FastConfig());
  ADAMEL_CHECK(copy->LoadCheckpoint(path).ok());
  return copy;
}

ServiceOptions PumpServiceOptions() {
  ServiceOptions options;
  options.batcher.worker_threads = 0;
  return options;
}

ScoreRequest MakeScoreRequest(const data::PairDataset& pairs,
                              int64_t deadline_ns = 0) {
  ScoreRequest request;
  request.model = "adamel";
  request.pairs = pairs;
  request.deadline_ns = deadline_ns;
  return request;
}

// Drains queue and lifecycle together until both are quiet, the pump-mode
// analogue of "wait for the system to settle".
void PumpUntilQuiet(LinkageService* service, LifecycleManager* lifecycle) {
  lifecycle->Tick();
  while (service->queued_pairs() > 0 || lifecycle->pending_shadows() > 0) {
    service->PumpOnce();
    lifecycle->Tick();
  }
}

// ------------------------------------------------------- hot-swap under load

// Three full promote cycles under sustained traffic, all on the fake
// clock. Every client request resolves OK (zero drops), scores are
// bitwise the offline reference of the version that served it (zero torn
// models), and no deadline ever fires (the fake clock only advances when
// the test says so, and a swap must not manufacture misses).
TEST(LifecycleTest, HotSwapsUnderLoadNoDropsNoTearsNoMisses) {
  obs::ScopedFakeClock clock;
  std::shared_ptr<const core::AdamelLinkage> incumbent = TrainToyLinkage(40);
  const data::PairDataset test = ToyDataset(12, 41);
  const std::vector<float> offline = incumbent->ScorePairs(test).value();

  LinkageService service(PumpServiceOptions());
  ASSERT_TRUE(service.registry().Register("adamel", 1, incumbent).ok());

  LifecycleOptions lopts;
  lopts.model_name = "adamel";
  lopts.shadow_fraction = 1.0;
  lopts.min_shadow_requests = 2;
  lopts.probation_requests = 2;
  LifecycleManager lifecycle(&service, lopts);

  std::vector<std::pair<std::future<ScoreResponse>, int>> responses;
  const auto drive = [&](int requests) {
    for (int i = 0; i < requests; ++i) {
      // Generous absolute deadline; the clock advances only in Advance().
      responses.emplace_back(
          lifecycle.SubmitShadowed(
              MakeScoreRequest(test, obs::NowNanos() + 1'000'000'000)),
          lifecycle.stats().incumbent_version);
      clock.Advance(1'000);
      while (service.queued_pairs() > 0) {
        service.PumpOnce();
      }
      lifecycle.Tick();
    }
  };

  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(lifecycle
                    .StageCandidate(CheckpointCopy(
                        *incumbent,
                        "lifecycle_swap_" + std::to_string(cycle) + ".ckpt"))
                    .ok());
    // Shadow phase: enough mirrored traffic to render the verdict, then
    // probation traffic to confirm it.
    drive(3);
    EXPECT_EQ(lifecycle.stats().state, LifecycleState::kProbation)
        << "cycle " << cycle;
    drive(3);
    EXPECT_EQ(lifecycle.stats().state, LifecycleState::kIdle)
        << "cycle " << cycle;
  }
  PumpUntilQuiet(&service, &lifecycle);

  const LifecycleStats stats = lifecycle.stats();
  EXPECT_EQ(stats.promotions, 3);
  EXPECT_EQ(stats.swaps, 3);
  EXPECT_EQ(stats.rollbacks, 0);
  EXPECT_EQ(stats.incumbent_version, 4);  // v1 + three promotions
  EXPECT_EQ(stats.shadow_errors, 0);
  EXPECT_DOUBLE_EQ(stats.mean_abs_delta, 0.0);  // checkpoint copies

  // Zero drops, zero torn models, zero deadline misses.
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_EQ(responses[i].first.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "request " << i << " was dropped";
    const ScoreResponse response = responses[i].first.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    // All versions are checkpoint copies of v1, so every version's offline
    // reference is the same vector; bitwise equality proves the batch was
    // scored by a fully-published model, not a torn one.
    EXPECT_EQ(response.scores, offline) << "request " << i;
    EXPECT_GE(response.served_version, responses[i].second)
        << "request " << i << " served by a version older than the "
        << "incumbent at submission";
  }
  const BatcherStats served = service.stats();
  EXPECT_EQ(served.timed_out, 0);
  EXPECT_EQ(served.rejected, 0);
  EXPECT_EQ(served.failed, 0);
}

// The version id is part of the coalescing key: the same model object
// registered under two versions never shares a batch, which is exactly
// what keeps pre-swap and post-swap requests apart during a hot-swap.
TEST(LifecycleTest, SameModelDifferentVersionsNeverShareABatch) {
  std::shared_ptr<const core::AdamelLinkage> model = TrainToyLinkage(42);
  const data::PairDataset test = ToyDataset(8, 43);
  const std::vector<float> offline = model->ScorePairs(test).value();

  ServiceOptions options = PumpServiceOptions();
  options.batcher.max_batch_pairs = 64;  // both requests would fit in one
  LinkageService service(options);
  ASSERT_TRUE(service.registry().Register("adamel", 1, model).ok());
  const StatusOr<int> republished =
      service.registry().Publish("adamel", model);
  ASSERT_TRUE(republished.ok());
  EXPECT_EQ(republished.value(), 2);

  ScoreRequest pinned_v1 = MakeScoreRequest(test);
  pinned_v1.version = 1;
  ScoreRequest latest = MakeScoreRequest(test);  // resolves to v2
  std::future<ScoreResponse> f1 = service.SubmitAsync(std::move(pinned_v1));
  std::future<ScoreResponse> f2 = service.SubmitAsync(std::move(latest));
  while (service.PumpOnce() > 0) {
  }

  // Same model pointer, same mode, same schema — but different pinned
  // versions, so two batches.
  EXPECT_EQ(service.stats().batches, 2);
  EXPECT_EQ(service.stats().coalesced_requests, 0);
  const ScoreResponse r1 = f1.get();
  const ScoreResponse r2 = f2.get();
  EXPECT_EQ(r1.served_version, 1);
  EXPECT_EQ(r2.served_version, 2);
  EXPECT_EQ(r1.scores, offline);
  EXPECT_EQ(r2.scores, offline);
}

// Rapid-fire promote cycles: the state machine survives a swap storm
// without wedging, leaking pending shadows, or dropping traffic.
TEST(LifecycleTest, SwapStormPromotesEveryCycle) {
  obs::ScopedFakeClock clock;
  std::shared_ptr<const core::AdamelLinkage> incumbent = TrainToyLinkage(44);
  const data::PairDataset test = ToyDataset(6, 45);
  const std::vector<float> offline = incumbent->ScorePairs(test).value();

  LinkageService service(PumpServiceOptions());
  ASSERT_TRUE(service.registry().Register("adamel", 1, incumbent).ok());

  LifecycleOptions lopts;
  lopts.model_name = "adamel";
  lopts.shadow_fraction = 1.0;
  lopts.min_shadow_requests = 1;
  lopts.probation_requests = 1;
  LifecycleManager lifecycle(&service, lopts);

  constexpr int kCycles = 8;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    ASSERT_TRUE(lifecycle
                    .StageCandidate(CheckpointCopy(
                        *incumbent,
                        "lifecycle_storm_" + std::to_string(cycle) + ".ckpt"))
                    .ok());
    // One request renders the verdict, the next clears probation.
    for (int step = 0; step < 2; ++step) {
      std::future<ScoreResponse> response =
          lifecycle.SubmitShadowed(MakeScoreRequest(test));
      while (service.queued_pairs() > 0) {
        service.PumpOnce();
      }
      lifecycle.Tick();
      EXPECT_EQ(response.get().scores, offline);
    }
    ASSERT_EQ(lifecycle.stats().state, LifecycleState::kIdle)
        << "cycle " << cycle << " wedged";
  }
  PumpUntilQuiet(&service, &lifecycle);

  const LifecycleStats stats = lifecycle.stats();
  EXPECT_EQ(stats.promotions, kCycles);
  EXPECT_EQ(stats.rollbacks, 0);
  EXPECT_EQ(stats.incumbent_version, 1 + kCycles);
  EXPECT_EQ(lifecycle.pending_shadows(), 0);
  EXPECT_EQ(service.stats().timed_out, 0);
  EXPECT_EQ(service.stats().failed, 0);
}

// ------------------------------------------------------------- rollbacks

// A candidate whose scores diverge from the incumbent past the golden
// band must never reach the registry: verdict = auto-rollback, clients
// keep getting incumbent scores throughout.
TEST(LifecycleTest, AutoRollbackOnGoldenBandViolation) {
  obs::ScopedFakeClock clock;
  std::shared_ptr<const core::AdamelLinkage> incumbent = TrainToyLinkage(46);
  // Different seed => different weights => per-pair scores far apart
  // relative to a 0.02 band.
  std::shared_ptr<const core::AdamelLinkage> diverged =
      TrainCorruptedLinkage(47);
  const data::PairDataset test = ToyDataset(10, 48);
  const std::vector<float> offline = incumbent->ScorePairs(test).value();

  LinkageService service(PumpServiceOptions());
  ASSERT_TRUE(service.registry().Register("adamel", 1, incumbent).ok());

  LifecycleOptions lopts;
  lopts.model_name = "adamel";
  lopts.shadow_fraction = 1.0;
  lopts.min_shadow_requests = 2;
  LifecycleManager lifecycle(&service, lopts);
  ASSERT_TRUE(lifecycle.StageCandidate(diverged).ok());

  std::vector<std::future<ScoreResponse>> responses;
  for (int i = 0; i < 3; ++i) {
    responses.push_back(lifecycle.SubmitShadowed(MakeScoreRequest(test)));
    while (service.queued_pairs() > 0) {
      service.PumpOnce();
    }
    lifecycle.Tick();
  }
  PumpUntilQuiet(&service, &lifecycle);

  const LifecycleStats stats = lifecycle.stats();
  EXPECT_EQ(stats.state, LifecycleState::kRolledBack);
  EXPECT_EQ(stats.rollbacks, 1);
  EXPECT_EQ(stats.promotions, 0);
  EXPECT_EQ(stats.swaps, 0);  // the candidate was never published
  EXPECT_GT(stats.mean_abs_delta, lopts.max_mean_abs_delta);
  EXPECT_NE(stats.last_error.find("exceeds band"), std::string::npos)
      << stats.last_error;

  // The registry still serves the incumbent as the latest version.
  const StatusOr<ResolvedModel> resolved =
      service.registry().Resolve("adamel");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value().model.get(), incumbent.get());
  EXPECT_EQ(resolved.value().version, 1);
  for (std::future<ScoreResponse>& response : responses) {
    EXPECT_EQ(response.get().scores, offline);
  }
}

// Rollback with mirrors still in flight: the pending shadows drain
// cleanly (no wedge, no leak), and the manager accepts the next candidate
// from kRolledBack.
TEST(LifecycleTest, RollbackMidShadowDrainsCleanlyAndRecovers) {
  obs::ScopedFakeClock clock;
  std::shared_ptr<const core::AdamelLinkage> incumbent = TrainToyLinkage(49);
  std::shared_ptr<const core::AdamelLinkage> diverged =
      TrainCorruptedLinkage(50);
  const data::PairDataset test = ToyDataset(6, 51);

  LinkageService service(PumpServiceOptions());
  ASSERT_TRUE(service.registry().Register("adamel", 1, incumbent).ok());

  LifecycleOptions lopts;
  lopts.model_name = "adamel";
  lopts.shadow_fraction = 1.0;
  lopts.min_shadow_requests = 2;
  lopts.probation_requests = 1;
  LifecycleManager lifecycle(&service, lopts);
  ASSERT_TRUE(lifecycle.StageCandidate(diverged).ok());

  // Queue four mirrored requests WITHOUT pumping: all shadows in flight.
  std::vector<std::future<ScoreResponse>> responses;
  for (int i = 0; i < 4; ++i) {
    responses.push_back(lifecycle.SubmitShadowed(MakeScoreRequest(test)));
  }
  EXPECT_EQ(lifecycle.pending_shadows(), 4);

  // Pump enough for the first two comparisons, render the rollback while
  // the last two mirrors are still pending.
  while (lifecycle.stats().state == LifecycleState::kShadowing) {
    service.PumpOnce();
    lifecycle.Tick();
  }
  EXPECT_EQ(lifecycle.stats().state, LifecycleState::kRolledBack);

  // The stale mirrors drain without wedging the manager.
  PumpUntilQuiet(&service, &lifecycle);
  EXPECT_EQ(lifecycle.pending_shadows(), 0);
  for (std::future<ScoreResponse>& response : responses) {
    EXPECT_TRUE(response.get().status.ok());
  }

  // kRolledBack accepts the next (healthy) candidate and promotes it.
  ASSERT_TRUE(lifecycle
                  .StageCandidate(CheckpointCopy(
                      *incumbent, "lifecycle_recover.ckpt"))
                  .ok());
  for (int i = 0; i < 4; ++i) {
    responses.push_back(lifecycle.SubmitShadowed(MakeScoreRequest(test)));
    while (service.queued_pairs() > 0) {
      service.PumpOnce();
    }
    lifecycle.Tick();
  }
  PumpUntilQuiet(&service, &lifecycle);
  EXPECT_EQ(lifecycle.stats().promotions, 1);
  EXPECT_EQ(lifecycle.stats().state, LifecycleState::kIdle);
}

// Promotion followed by a deadline-miss-rate regression during probation:
// the incumbent is re-published (swap back) and the lifecycle lands in
// kRolledBack.
TEST(LifecycleTest, MissRateRegressionDuringProbationRollsBack) {
  obs::ScopedFakeClock clock;
  std::shared_ptr<const core::AdamelLinkage> incumbent = TrainToyLinkage(52);
  const data::PairDataset test = ToyDataset(6, 53);

  LinkageService service(PumpServiceOptions());
  ASSERT_TRUE(service.registry().Register("adamel", 1, incumbent).ok());

  LifecycleOptions lopts;
  lopts.model_name = "adamel";
  lopts.shadow_fraction = 1.0;
  lopts.min_shadow_requests = 1;
  lopts.probation_requests = 4;
  lopts.max_miss_rate_regression = 0.25;
  LifecycleManager lifecycle(&service, lopts);
  ASSERT_TRUE(lifecycle
                  .StageCandidate(
                      CheckpointCopy(*incumbent, "lifecycle_miss.ckpt"))
                  .ok());

  // Clean traffic to promote.
  std::future<ScoreResponse> good =
      lifecycle.SubmitShadowed(MakeScoreRequest(test));
  while (service.queued_pairs() > 0) {
    service.PumpOnce();
  }
  lifecycle.Tick();
  ASSERT_EQ(lifecycle.stats().state, LifecycleState::kProbation);
  const int promoted_version = 2;

  // Probation traffic that all expires in the queue: submit with a tight
  // deadline, advance the fake clock past it, then pump.
  for (int i = 0; i < lopts.probation_requests; ++i) {
    std::future<ScoreResponse> missed = lifecycle.SubmitShadowed(
        MakeScoreRequest(test, obs::NowNanos() + 1'000));
    clock.Advance(2'000);  // expires in queue
    while (service.queued_pairs() > 0) {
      service.PumpOnce();
    }
    EXPECT_EQ(missed.get().status.code(), StatusCode::kDeadlineExceeded);
    lifecycle.Tick();
  }
  PumpUntilQuiet(&service, &lifecycle);

  const LifecycleStats stats = lifecycle.stats();
  EXPECT_EQ(stats.state, LifecycleState::kRolledBack);
  EXPECT_EQ(stats.promotions, 1);
  EXPECT_EQ(stats.rollbacks, 1);
  EXPECT_EQ(stats.swaps, 2);  // promote + revert
  // The re-published incumbent is the newest version and newer than the
  // regressed candidate; new traffic resolves to the incumbent object.
  const StatusOr<ResolvedModel> resolved =
      service.registry().Resolve("adamel");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value().model.get(), incumbent.get());
  EXPECT_GT(resolved.value().version, promoted_version);
  EXPECT_EQ(stats.incumbent_version, resolved.value().version);
  EXPECT_TRUE(good.get().status.ok());
}

// ------------------------------------------------------------ fine-tuning

core::FitCheckpointOptions FineTuneFit(const std::string& state_name,
                                       const std::string& warm_start) {
  core::FitCheckpointOptions fit;
  fit.path = TempPath(state_name);
  // A stale train state from a previous test-binary run would silently
  // resume instead of warm-starting; make each run hermetic.
  std::remove(fit.path.c_str());
  fit.resume = true;
  fit.warm_start_path = warm_start;
  return fit;
}

// An interrupted fine-tune (simulated via max_epochs_this_run) leaves the
// train-state checkpoint intact; re-running the same spec resumes and the
// result is bitwise identical to an uninterrupted warm-start fine-tune.
TEST(LifecycleTest, InterruptedFineTuneResumesBitwiseFromCheckpoint) {
  obs::ScopedFakeClock clock;
  std::unique_ptr<core::AdamelLinkage> incumbent_train = TrainToyLinkage(54);
  const std::string donor_path = TempPath("lifecycle_donor.ckpt");
  ASSERT_TRUE(incumbent_train->SaveCheckpoint(donor_path).ok());
  std::shared_ptr<const core::AdamelLinkage> incumbent =
      std::move(incumbent_train);

  const data::PairDataset new_source = ToyDataset(60, 55);
  const data::PairDataset test = ToyDataset(10, 56);
  core::MelInputs inputs;
  inputs.source_train = &new_source;

  LinkageService service(PumpServiceOptions());
  ASSERT_TRUE(service.registry().Register("adamel", 1, incumbent).ok());

  LifecycleOptions lopts;
  lopts.model_name = "adamel";
  LifecycleManager lifecycle(&service, lopts);

  FineTuneSpec spec;
  spec.config = FastConfig();
  spec.inputs = &inputs;
  spec.fit = FineTuneFit("lifecycle_ft_state.ckpt", donor_path);
  spec.candidate_model_path = TempPath("lifecycle_ft_cand.ckpt");

  // "Crash" after one of two epochs.
  spec.fit.max_epochs_this_run = 1;
  ASSERT_TRUE(lifecycle.BeginFineTune(spec, /*synchronous=*/true).ok());
  LifecycleStats stats = lifecycle.stats();
  EXPECT_EQ(stats.state, LifecycleState::kIdle);
  EXPECT_EQ(stats.fine_tunes_interrupted, 1);

  // Resume to completion: the candidate is staged for shadowing.
  spec.fit.max_epochs_this_run = 0;
  ASSERT_TRUE(lifecycle.BeginFineTune(spec, /*synchronous=*/true).ok());
  stats = lifecycle.stats();
  EXPECT_EQ(stats.state, LifecycleState::kShadowing);
  EXPECT_EQ(stats.fine_tunes, 2);
  EXPECT_TRUE(stats.last_error.empty()) << stats.last_error;

  // Reference: the same warm-start fine-tune run uninterrupted.
  core::AdamelTrainer trainer(spec.config);
  core::FitCheckpointOptions reference_fit =
      FineTuneFit("lifecycle_ft_ref_state.ckpt", donor_path);
  const StatusOr<std::shared_ptr<core::TrainedAdamel>> reference =
      trainer.FitWithCheckpoint(core::AdamelVariant::kBase, inputs,
                                reference_fit);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // The staged candidate is served from its saved checkpoint; compare it
  // against the reference bitwise via the checkpoint path.
  core::AdamelLinkage staged(core::AdamelVariant::kBase, spec.config);
  ASSERT_TRUE(staged.LoadCheckpoint(spec.candidate_model_path).ok());
  EXPECT_EQ(staged.ScorePairs(test).value(),
            (*reference)->ScorePairs(data::PairSpan(test)));
}

// A background (asynchronous) fine-tune produces a servable candidate that
// shadows and promotes — the full "new source arrives live" path.
TEST(LifecycleTest, BackgroundFineTunePromotesUnderLiveTraffic) {
  std::unique_ptr<core::AdamelLinkage> incumbent_train = TrainToyLinkage(57);
  const std::string donor_path = TempPath("lifecycle_bg_donor.ckpt");
  ASSERT_TRUE(incumbent_train->SaveCheckpoint(donor_path).ok());
  std::shared_ptr<const core::AdamelLinkage> incumbent =
      std::move(incumbent_train);

  // The "new source": the same distribution (so the fine-tuned candidate
  // stays inside the golden band) with fresh draws.
  const data::PairDataset new_source = ToyDataset(60, 57);
  const data::PairDataset test = ToyDataset(8, 58);
  core::MelInputs inputs;
  inputs.source_train = &new_source;

  LinkageService service(PumpServiceOptions());
  ASSERT_TRUE(service.registry().Register("adamel", 1, incumbent).ok());

  LifecycleOptions lopts;
  lopts.model_name = "adamel";
  lopts.shadow_fraction = 1.0;
  lopts.min_shadow_requests = 2;
  lopts.probation_requests = 2;
  // Fine-tuning from the incumbent's weights on same-distribution data
  // moves scores a little; keep the band wide enough for a healthy
  // candidate while still far below the ~0.3+ deltas of a wrong model.
  lopts.max_mean_abs_delta = 0.15;
  LifecycleManager lifecycle(&service, lopts);

  FineTuneSpec spec;
  spec.config = FastConfig();
  spec.inputs = &inputs;
  spec.fit = FineTuneFit("lifecycle_bg_state.ckpt", donor_path);
  spec.candidate_model_path = TempPath("lifecycle_bg_cand.ckpt");
  ASSERT_TRUE(lifecycle.BeginFineTune(spec).ok());
  EXPECT_EQ(lifecycle.stats().state, LifecycleState::kFineTuning);

  // Serve traffic while the fit runs in the background.
  const auto serve_one = [&] {
    std::future<ScoreResponse> response =
        lifecycle.SubmitShadowed(MakeScoreRequest(test));
    while (service.queued_pairs() > 0) {
      service.PumpOnce();
    }
    lifecycle.Tick();
    EXPECT_TRUE(response.get().status.ok());
  };
  while (lifecycle.stats().state == LifecycleState::kFineTuning) {
    serve_one();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(lifecycle.stats().state, LifecycleState::kShadowing)
      << lifecycle.stats().last_error;

  // Shadow, promote, clear probation.
  while (lifecycle.stats().state == LifecycleState::kShadowing ||
         lifecycle.stats().state == LifecycleState::kProbation) {
    serve_one();
  }
  PumpUntilQuiet(&service, &lifecycle);

  const LifecycleStats stats = lifecycle.stats();
  EXPECT_EQ(stats.state, LifecycleState::kIdle) << stats.last_error;
  EXPECT_EQ(stats.promotions, 1);
  EXPECT_EQ(stats.rollbacks, 0);
  EXPECT_EQ(stats.incumbent_version, 2);
  EXPECT_LE(stats.mean_abs_delta, lopts.max_mean_abs_delta);
}

// ------------------------------------------------------------ concurrency

// TSan scenario: client threads hammer SubmitShadowed while the control
// thread runs promote cycles (stage -> verdict -> probation) against a
// worker-thread service. Run under ADAMEL_SANITIZE=thread in CI.
TEST(LifecycleTest, ConcurrentSwapsUnderWorkerThreads) {
  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 20;
  constexpr int kCycles = 3;

  std::shared_ptr<const core::AdamelLinkage> incumbent = TrainToyLinkage(59);
  const data::PairDataset test = ToyDataset(12, 60);
  const std::vector<float> offline = incumbent->ScorePairs(test).value();

  ServiceOptions options;
  options.batcher.worker_threads = 2;
  LinkageService service(options);
  ASSERT_TRUE(service.registry().Register("adamel", 1, incumbent).ok());

  LifecycleOptions lopts;
  lopts.model_name = "adamel";
  lopts.shadow_fraction = 0.5;
  lopts.min_shadow_requests = 2;
  lopts.probation_requests = 4;
  LifecycleManager lifecycle(&service, lopts);

  std::vector<std::thread> clients;
  std::vector<std::vector<ScoreResponse>> responses(kClients);
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([c, &lifecycle, &test, &responses] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        ScoreRequest request;
        request.model = "adamel";
        request.pairs = test;
        responses[c].push_back(
            lifecycle.SubmitShadowed(std::move(request)).get());
      }
    });
  }

  // Control thread: run promote cycles while the clients hammer.
  int promoted = 0;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    const Status staged = lifecycle.StageCandidate(CheckpointCopy(
        *incumbent, "lifecycle_tsan_" + std::to_string(cycle) + ".ckpt"));
    ASSERT_TRUE(staged.ok()) << staged.ToString();
    while (lifecycle.stats().state == LifecycleState::kShadowing ||
           lifecycle.stats().state == LifecycleState::kProbation) {
      lifecycle.Tick();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(lifecycle.stats().state, LifecycleState::kIdle);
    ++promoted;
  }
  for (std::thread& client : clients) {
    client.join();
  }
  // Drain mirrors left in flight.
  while (lifecycle.pending_shadows() > 0) {
    lifecycle.Tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  EXPECT_EQ(promoted, kCycles);
  const LifecycleStats stats = lifecycle.stats();
  EXPECT_EQ(stats.promotions, kCycles);
  EXPECT_EQ(stats.rollbacks, 0);
  EXPECT_EQ(stats.shadow_errors, 0);
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(),
              static_cast<size_t>(kRequestsPerClient));
    for (const ScoreResponse& response : responses[c]) {
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      EXPECT_EQ(response.scores, offline);  // all versions share weights
    }
  }
}

// ----------------------------------------------------------- state guards

TEST(LifecycleTest, StageAndFineTuneRejectWrongStates) {
  std::shared_ptr<const core::AdamelLinkage> incumbent = TrainToyLinkage(61);
  std::shared_ptr<const core::AdamelLinkage> other = TrainToyLinkage(62);

  LinkageService service(PumpServiceOptions());
  LifecycleOptions lopts;
  lopts.model_name = "adamel";
  LifecycleManager lifecycle(&service, lopts);

  // Null candidate and missing incumbent are typed errors.
  EXPECT_EQ(lifecycle.StageCandidate(nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(lifecycle.StageCandidate(other).code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(service.registry().Register("adamel", 1, incumbent).ok());
  ASSERT_TRUE(lifecycle.StageCandidate(other).ok());
  // Shadowing: neither a second candidate nor a fine-tune may start.
  EXPECT_EQ(lifecycle.StageCandidate(other).code(),
            StatusCode::kFailedPrecondition);
  FineTuneSpec spec;
  core::MelInputs inputs;
  const data::PairDataset train = ToyDataset(10, 63);
  inputs.source_train = &train;
  spec.inputs = &inputs;
  spec.fit.path = TempPath("lifecycle_guard_state.ckpt");
  spec.candidate_model_path = TempPath("lifecycle_guard_cand.ckpt");
  EXPECT_EQ(lifecycle.BeginFineTune(spec).code(),
            StatusCode::kFailedPrecondition);

  // Spec validation fires before state checks.
  FineTuneSpec incomplete;
  EXPECT_EQ(lifecycle.BeginFineTune(incomplete).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace adamel::serve
