// Tests for src/gallery: enrollment/search correctness properties (probe vs
// exhaustive recall, deterministic tie-breaking), Status-first validation,
// bitwise save/load round trips, bucket-overflow stop-wording, concurrent
// Enroll/Search (the TSan target), the CandidateSource adapter, and model
// re-ranking. Corruption sweeps over the persisted format live in
// corruption_test.cpp.

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "data/candidate_source.h"
#include "data/record.h"
#include "gallery/gallery.h"
#include "gallery/gallery_source.h"
#include "nn/serialize.h"

namespace adamel::gallery {
namespace {

data::Record MakeRecord(const std::string& id, const std::string& name,
                        const std::string& extra = "") {
  data::Record record;
  record.id = id;
  record.source = "test";
  record.values = {name, extra};
  return record;
}

data::Schema TwoAttrSchema() { return data::Schema({"name", "extra"}); }

GalleryOptions SmallOptions() {
  GalleryOptions options;
  options.embedding.dim = 32;
  options.num_shards = 4;
  return options;
}

// Random multi-token names from a moderate vocabulary: records share tokens
// often enough that bucket probes have real work to do.
std::vector<data::Record> RandomRecords(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<data::Record> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    std::string name;
    const int tokens = 2 + static_cast<int>(rng.UniformInt(3));
    for (int t = 0; t < tokens; ++t) {
      if (t > 0) name += ' ';
      name += "tok" + std::to_string(rng.UniformInt(40));
    }
    records.push_back(MakeRecord("rec" + std::to_string(i), name,
                                 "extra" + std::to_string(rng.UniformInt(8))));
  }
  return records;
}

std::vector<int64_t> Indices(const std::vector<Candidate>& hits) {
  std::vector<int64_t> out;
  out.reserve(hits.size());
  for (const Candidate& hit : hits) {
    out.push_back(hit.index);
  }
  return out;
}

// ------------------------------------------------------------- validation

TEST(GalleryTest, CreateRejectsBadConfiguration) {
  EXPECT_EQ(Gallery::Create(data::Schema(), SmallOptions()).status().code(),
            StatusCode::kInvalidArgument);

  GalleryOptions bad_shards = SmallOptions();
  bad_shards.num_shards = 0;
  EXPECT_EQ(Gallery::Create(TwoAttrSchema(), bad_shards).status().code(),
            StatusCode::kInvalidArgument);

  GalleryOptions bad_key = SmallOptions();
  bad_key.key_attributes = {"no_such_attribute"};
  const Status status =
      Gallery::Create(TwoAttrSchema(), bad_key).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("no_such_attribute"), std::string::npos);
}

TEST(GalleryTest, EnrollRejectsMalformedRecordsWithoutMutating) {
  auto gallery = Gallery::Create(TwoAttrSchema(), SmallOptions()).value();
  std::vector<data::Record> records = {MakeRecord("a", "fine record")};
  records.push_back(records[0]);
  records[1].id = "b";
  records[1].values.pop_back();  // wrong arity
  EXPECT_EQ(gallery->Enroll(records).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(gallery->size(), 0);  // record "a" was not half-enrolled
}

TEST(GalleryTest, SearchValidatesQueryAndK) {
  auto gallery = Gallery::Create(TwoAttrSchema(), SmallOptions()).value();
  const std::vector<data::Record> records = {MakeRecord("a", "abbey road")};
  ASSERT_TRUE(gallery->Enroll(records).ok());
  EXPECT_EQ(gallery->Search(records[0], 0).status().code(),
            StatusCode::kInvalidArgument);
  data::Record short_query = records[0];
  short_query.values.pop_back();
  EXPECT_EQ(gallery->Search(short_query, 5).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GalleryTest, EmptyGallerySearchIsEmptyNotAnError) {
  auto gallery = Gallery::Create(TwoAttrSchema(), SmallOptions()).value();
  const auto hits = gallery->Search(MakeRecord("q", "anything"), 5);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits.value().empty());
}

// ------------------------------------------------------- search properties

TEST(GalleryTest, FindsEnrolledDuplicate) {
  auto gallery = Gallery::Create(TwoAttrSchema(), SmallOptions()).value();
  std::vector<data::Record> records = RandomRecords(100, 7);
  records.push_back(MakeRecord("dup", records[3].values[0],
                               records[3].values[1]));
  ASSERT_TRUE(gallery->Enroll(records).ok());
  // Searching with record 3's content must put the two identical records
  // on top (identical codes; ties broken by index).
  const auto hits = gallery->Search(records[3], 2).value();
  ASSERT_EQ(hits.size(), 2u);
  std::set<std::string> top = {hits[0].id, hits[1].id};
  EXPECT_TRUE(top.count("rec3"));
  EXPECT_TRUE(top.count("dup"));
  EXPECT_FLOAT_EQ(hits[0].score, hits[1].score);
}

TEST(GalleryTest, SharedTokenMakesProbeExactlyExhaustive) {
  // Every record shares the token "anchor", so with unlimited buckets one
  // probe reaches the whole gallery: Search must equal SearchExhaustive
  // exactly, hit for hit.
  GalleryOptions options = SmallOptions();
  options.max_bucket_postings = 0;
  auto gallery = Gallery::Create(TwoAttrSchema(), options).value();
  std::vector<data::Record> records = RandomRecords(80, 11);
  for (auto& record : records) {
    record.values[0] = "anchor " + record.values[0];
  }
  ASSERT_TRUE(gallery->Enroll(records).ok());
  for (int q = 0; q < 10; ++q) {
    const auto probed = gallery->Search(records[q * 7], 15).value();
    const auto exhaustive =
        gallery->SearchExhaustive(records[q * 7], 15).value();
    ASSERT_EQ(Indices(probed), Indices(exhaustive)) << "query " << q;
    for (size_t i = 0; i < probed.size(); ++i) {
      EXPECT_EQ(probed[i].score, exhaustive[i].score);
      EXPECT_EQ(probed[i].id, exhaustive[i].id);
    }
  }
}

TEST(GalleryTest, ProbeRecallAgainstExhaustiveOracle) {
  auto gallery = Gallery::Create(TwoAttrSchema(), SmallOptions()).value();
  const std::vector<data::Record> records = RandomRecords(400, 13);
  ASSERT_TRUE(gallery->Enroll(records).ok());
  constexpr int kTop = 10;
  int found = 0;
  int total = 0;
  for (int q = 0; q < 40; ++q) {
    const data::Record& query = records[q * 9];
    const auto probed = Indices(gallery->Search(query, kTop).value());
    const auto oracle = Indices(gallery->SearchExhaustive(query, kTop).value());
    const std::set<int64_t> probed_set(probed.begin(), probed.end());
    for (int64_t want : oracle) {
      ++total;
      found += probed_set.count(want) ? 1 : 0;
    }
  }
  ASSERT_GT(total, 0);
  const double recall = static_cast<double>(found) / total;
  EXPECT_GE(recall, 0.95) << found << "/" << total;
}

TEST(GalleryTest, TiesBreakByAscendingIndexDeterministically) {
  auto gallery = Gallery::Create(TwoAttrSchema(), SmallOptions()).value();
  // Five identical records: all scores tie, so top-k order must be exactly
  // ascending gallery index, run after run.
  std::vector<data::Record> records;
  for (int i = 0; i < 5; ++i) {
    records.push_back(MakeRecord("same" + std::to_string(i), "identical twin"));
  }
  const auto indices = gallery->EnrollAssigningIndices(records).value();
  std::vector<int64_t> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto hits = gallery->Search(records[0], 5).value();
    ASSERT_EQ(Indices(hits), sorted);
  }
}

TEST(GalleryTest, OverflowedBucketsStopMatching) {
  GalleryOptions options = SmallOptions();
  options.num_shards = 1;  // all postings share one shard's buckets
  options.max_bucket_postings = 4;
  auto gallery = Gallery::Create(TwoAttrSchema(), options).value();
  std::vector<data::Record> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(MakeRecord("r" + std::to_string(i), "stopword"));
  }
  ASSERT_TRUE(gallery->Enroll(records).ok());
  // The only token every record carries overflowed its bucket, so a probe
  // by that token alone reaches nothing...
  EXPECT_TRUE(gallery->Search(records[0], 5).value().empty());
  // ...while the exhaustive oracle still sees every record.
  EXPECT_EQ(gallery->SearchExhaustive(records[0], 5).value().size(), 5u);
}

TEST(GalleryTest, GetRecordRoundTripsAndRejectsUnknownIndices) {
  auto gallery = Gallery::Create(TwoAttrSchema(), SmallOptions()).value();
  const std::vector<data::Record> records = RandomRecords(20, 17);
  const auto indices = gallery->EnrollAssigningIndices(records).value();
  for (size_t r = 0; r < records.size(); ++r) {
    const data::Record loaded = gallery->GetRecord(indices[r]).value();
    EXPECT_EQ(loaded.id, records[r].id);
    EXPECT_EQ(loaded.values, records[r].values);
  }
  EXPECT_EQ(gallery->GetRecord(-1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(gallery->GetRecord(1'000'000).status().code(),
            StatusCode::kNotFound);
}

TEST(GalleryTest, StoreRecordsOffSavesMemoryButRefusesGetRecord) {
  GalleryOptions options = SmallOptions();
  options.store_records = false;
  auto gallery = Gallery::Create(TwoAttrSchema(), options).value();
  const std::vector<data::Record> records = RandomRecords(10, 19);
  const auto indices = gallery->EnrollAssigningIndices(records).value();
  EXPECT_EQ(gallery->GetRecord(indices[0]).status().code(),
            StatusCode::kFailedPrecondition);
  // Search still works: the index needs codes and buckets, not records.
  EXPECT_FALSE(gallery->Search(records[0], 3).value().empty());
}

// ------------------------------------------------------------ persistence

TEST(GalleryTest, SaveLoadRoundTripIsBitwise) {
  auto gallery = Gallery::Create(TwoAttrSchema(), SmallOptions()).value();
  const std::vector<data::Record> records = RandomRecords(150, 23);
  ASSERT_TRUE(gallery->Enroll(records).ok());
  const std::string path = ::testing::TempDir() + "/gallery_roundtrip.idx";
  ASSERT_TRUE(gallery->Save(path).ok());

  const auto loaded = Gallery::Load(path).value();
  EXPECT_EQ(loaded->size(), gallery->size());
  EXPECT_TRUE(loaded->schema() == gallery->schema());
  // Bitwise: re-serializing the loaded gallery reproduces the bytes.
  EXPECT_EQ(loaded->Serialize(), gallery->Serialize());
  // And the loaded index answers searches identically.
  for (int q = 0; q < 10; ++q) {
    const auto before = gallery->Search(records[q * 11], 8).value();
    const auto after = loaded->Search(records[q * 11], 8).value();
    ASSERT_EQ(before.size(), after.size());
    for (size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(before[i].index, after[i].index);
      EXPECT_EQ(before[i].score, after[i].score);
    }
  }
}

TEST(GalleryTest, RoundTripWithoutStoredRecords) {
  GalleryOptions options = SmallOptions();
  options.store_records = false;
  auto gallery = Gallery::Create(TwoAttrSchema(), options).value();
  const std::vector<data::Record> records = RandomRecords(30, 29);
  ASSERT_TRUE(gallery->Enroll(records).ok());
  const auto loaded = Gallery::Deserialize(gallery->Serialize()).value();
  EXPECT_EQ(loaded->size(), gallery->size());
  EXPECT_FALSE(loaded->options().store_records);
  EXPECT_EQ(loaded->Serialize(), gallery->Serialize());
}

TEST(GalleryTest, LoadOfMissingFileIsNotFound) {
  EXPECT_EQ(Gallery::Load(::testing::TempDir() + "/no_such_gallery.idx")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(GalleryTest, LoadOfForeignFileIsDataLoss) {
  const std::string path = ::testing::TempDir() + "/not_a_gallery.idx";
  ASSERT_TRUE(nn::AtomicWriteFile(path, "these are not index bytes").ok());
  EXPECT_EQ(Gallery::Load(path).status().code(), StatusCode::kDataLoss);
}

TEST(GalleryTest, DeserializeRejectsForeignCheckpointAsDataLoss) {
  // A valid *container* that is not a gallery (wrong sections) must still be
  // kDataLoss, not a crash or a half-built index.
  nn::BlobWriter blob;
  blob.WriteU32(42);
  nn::CheckpointWriter writer;
  writer.AddSection("weights", blob.TakeBuffer());
  EXPECT_EQ(Gallery::Deserialize(writer.Serialize()).status().code(),
            StatusCode::kDataLoss);
}

// ------------------------------------------------------------- concurrency

TEST(GalleryTest, ConcurrentEnrollAndSearchKeepInvariants) {
  auto gallery = Gallery::Create(TwoAttrSchema(), SmallOptions()).value();
  const std::vector<data::Record> seed_records = RandomRecords(50, 31);
  ASSERT_TRUE(gallery->Enroll(seed_records).ok());

  constexpr int kEnrollers = 2;
  constexpr int kSearchers = 2;
  constexpr int kBatches = 8;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int e = 0; e < kEnrollers; ++e) {
    threads.emplace_back([&, e] {
      for (int b = 0; b < kBatches; ++b) {
        const auto records =
            RandomRecords(20, 1000 + static_cast<uint64_t>(e) * 100 + b);
        std::vector<data::Record> renamed = records;
        for (auto& record : renamed) {
          record.id += "_e" + std::to_string(e) + "b" + std::to_string(b);
        }
        if (!gallery->Enroll(renamed).ok()) {
          failed = true;
        }
      }
    });
  }
  for (int s = 0; s < kSearchers; ++s) {
    threads.emplace_back([&, s] {
      for (int b = 0; b < kBatches * 4; ++b) {
        const auto hits =
            gallery->Search(seed_records[(s * 13 + b) % seed_records.size()],
                            10);
        if (!hits.ok()) {
          failed = true;
          continue;
        }
        // Scores must arrive ranked even while shards grow underneath.
        for (size_t i = 1; i < hits.value().size(); ++i) {
          if (hits.value()[i - 1].score < hits.value()[i].score) {
            failed = true;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(gallery->size(),
            50 + static_cast<int64_t>(kEnrollers) * kBatches * 20);
}

// -------------------------------------------------------- candidate source

TEST(GallerySourceTest, FindsDuplicatePairs) {
  const data::Schema schema = TwoAttrSchema();
  std::vector<data::Record> records = RandomRecords(60, 37);
  // Plant an exact duplicate of record 5 at the end.
  records.push_back(records[5]);
  records.back().id = "planted";
  GallerySourceOptions options;
  options.gallery = SmallOptions();
  options.probe_k = 5;
  const GalleryCandidateSource source(options);
  EXPECT_EQ(source.Name(), "gallery-index");
  const auto pairs = source.CandidatePairs(records, schema).value();
  bool found = false;
  int last_left = -1;
  int last_right = -1;
  for (const data::CandidatePair& pair : pairs) {
    EXPECT_LT(pair.left, pair.right);
    // Sorted, duplicate-free output (the CandidateSource contract).
    EXPECT_TRUE(pair.left > last_left ||
                (pair.left == last_left && pair.right > last_right));
    last_left = pair.left;
    last_right = pair.right;
    if (pair.left == 5 && pair.right == static_cast<int>(records.size()) - 1) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "duplicate pair (5, planted) not surfaced";
}

TEST(GallerySourceTest, ValidatesLikeEveryCandidateSource) {
  const GalleryCandidateSource source;
  const std::vector<data::Record> empty;
  EXPECT_EQ(source.CandidatePairs(empty, TwoAttrSchema()).status().code(),
            StatusCode::kInvalidArgument);

  GallerySourceOptions bad;
  bad.gallery.key_attributes = {"nope"};
  const GalleryCandidateSource bad_source(bad);
  const std::vector<data::Record> records = {MakeRecord("a", "x")};
  EXPECT_EQ(bad_source.CandidatePairs(records, TwoAttrSchema())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------- re-rank

// Deterministic stand-in scorer: prefers candidates whose name length is
// close to the query's (so re-ranking visibly reorders index hits).
class LengthAffinityModel : public core::EntityLinkageModel {
 public:
  std::string Name() const override { return "length-affinity-stub"; }
  Status Fit(const core::MelInputs& /*inputs*/) override { return OkStatus(); }
  int64_t ParameterCount() const override { return 0; }
  StatusOr<std::vector<float>> ScorePairs(
      data::PairSpan batch) const override {
    std::vector<float> scores;
    scores.reserve(static_cast<size_t>(batch.size()));
    for (const data::LabeledPair& pair : batch) {
      const float gap = static_cast<float>(pair.left.values[0].size()) -
                        static_cast<float>(pair.right.values[0].size());
      scores.push_back(1.0f / (1.0f + gap * gap));
    }
    return scores;
  }
};

TEST(RerankTest, ModelScoresReplaceIndexScores) {
  auto gallery = Gallery::Create(TwoAttrSchema(), SmallOptions()).value();
  const std::vector<data::Record> records = RandomRecords(40, 41);
  ASSERT_TRUE(gallery->Enroll(records).ok());
  const data::Record& query = records[0];
  auto hits = gallery->Search(query, 10).value();
  ASSERT_FALSE(hits.empty());

  const LengthAffinityModel model;
  const auto reranked =
      RerankCandidates(model, *gallery, query, hits, 5).value();
  ASSERT_LE(reranked.size(), 5u);
  for (size_t i = 0; i < reranked.size(); ++i) {
    // Every returned score is the model's, recomputable offline from the
    // same pair — the bitwise-identical contract in miniature.
    const data::Record right = gallery->GetRecord(reranked[i].index).value();
    data::PairDataset one(gallery->schema());
    data::LabeledPair pair;
    pair.left = query;
    pair.right = right;
    one.Add(std::move(pair));
    EXPECT_EQ(reranked[i].score, model.ScorePairs(one).value()[0]);
    if (i > 0) {
      EXPECT_GE(reranked[i - 1].score, reranked[i].score);
    }
  }
}

TEST(RerankTest, RejectsBadKAndMissingRecords) {
  auto gallery = Gallery::Create(TwoAttrSchema(), SmallOptions()).value();
  const std::vector<data::Record> records = RandomRecords(5, 43);
  ASSERT_TRUE(gallery->Enroll(records).ok());
  const LengthAffinityModel model;
  EXPECT_EQ(RerankCandidates(model, *gallery, records[0], {}, 0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  Candidate bogus;
  bogus.index = 999'999;
  EXPECT_EQ(RerankCandidates(model, *gallery, records[0], {bogus}, 3)
                .status()
                .code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace adamel::gallery
