// Tests for the binary checkpoint substrate (src/nn/serialize): CRC32,
// little-endian blob IO, tensor (de)serialization, and the checkpoint file
// container with its corruption defenses.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/serialize.h"
#include "nn/tensor.h"

namespace adamel::nn {
namespace {

// ------------------------------------------------------------------ CRC32

TEST(Crc32Test, MatchesKnownVector) {
  // The canonical IEEE-802.3 check value.
  const char data[] = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32Test, ChainingEqualsOneShot) {
  const char data[] = "checkpoint payload bytes";
  const uint32_t whole = Crc32(data, sizeof(data) - 1);
  const uint32_t first = Crc32(data, 10);
  const uint32_t chained = Crc32(data + 10, sizeof(data) - 1 - 10, first);
  EXPECT_EQ(chained, whole);
}

// ---------------------------------------------------------------- blob IO

TEST(BlobTest, PrimitiveRoundTrip) {
  BlobWriter writer;
  writer.WriteU8(0xAB);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(0x0123456789ABCDEFull);
  writer.WriteI32(-42);
  writer.WriteI64(-(1ll << 40));
  writer.WriteF32(3.25f);
  writer.WriteF64(-2.5e-300);
  writer.WriteBool(true);
  writer.WriteBool(false);
  writer.WriteString("héllo");
  writer.WriteFloats({1.0f, -0.0f, 2.5f});

  BlobReader reader(writer.buffer());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  float f32 = 0;
  double f64 = 0;
  bool b1 = false, b2 = true;
  std::string str;
  std::vector<float> floats;
  ASSERT_TRUE(reader.ReadU8(&u8).ok());
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI32(&i32).ok());
  ASSERT_TRUE(reader.ReadI64(&i64).ok());
  ASSERT_TRUE(reader.ReadF32(&f32).ok());
  ASSERT_TRUE(reader.ReadF64(&f64).ok());
  ASSERT_TRUE(reader.ReadBool(&b1).ok());
  ASSERT_TRUE(reader.ReadBool(&b2).ok());
  ASSERT_TRUE(reader.ReadString(&str).ok());
  ASSERT_TRUE(reader.ReadFloats(&floats).ok());
  EXPECT_TRUE(reader.AtEnd());

  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -(1ll << 40));
  EXPECT_EQ(f32, 3.25f);
  EXPECT_EQ(f64, -2.5e-300);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_EQ(str, "héllo");
  EXPECT_EQ(floats, (std::vector<float>{1.0f, -0.0f, 2.5f}));
}

TEST(BlobTest, LittleEndianOnTheWire) {
  BlobWriter writer;
  writer.WriteU32(0x01020304);
  const std::string& bytes = writer.buffer();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(bytes[3]), 0x01);
}

TEST(BlobTest, TruncatedReadFailsWithoutCrashing) {
  BlobWriter writer;
  writer.WriteU32(7);
  BlobReader reader(writer.buffer());
  uint64_t value = 0;
  const Status status = reader.ReadU64(&value);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(BlobTest, TruncatedStringFails) {
  BlobWriter writer;
  writer.WriteU32(100);  // length prefix promising more bytes than exist
  writer.WriteRaw("abc");
  BlobReader reader(writer.buffer());
  std::string value;
  EXPECT_FALSE(reader.ReadString(&value).ok());
}

TEST(BlobTest, HugeFloatCountDoesNotOverflow) {
  // A corrupted element count near 2^64 must not wrap around the byte-size
  // computation and pass the bounds check.
  BlobWriter writer;
  writer.WriteU64(0xFFFFFFFFFFFFFFFFull);
  BlobReader reader(writer.buffer());
  std::vector<float> values;
  EXPECT_FALSE(reader.ReadFloats(&values).ok());
}

TEST(BlobTest, BadBoolByteRejected) {
  BlobWriter writer;
  writer.WriteU8(2);
  BlobReader reader(writer.buffer());
  bool value = false;
  EXPECT_FALSE(reader.ReadBool(&value).ok());
}

// -------------------------------------------------------------- tensor IO

TEST(TensorIoTest, RoundTripIsBitwise) {
  Rng rng(3);
  const Tensor original = Tensor::RandomNormal(4, 5, 1.0f, &rng);
  BlobWriter writer;
  WriteTensor(original, &writer);
  BlobReader reader(writer.buffer());
  StatusOr<Tensor> restored = ReadTensor(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->rows(), 4);
  EXPECT_EQ(restored->cols(), 5);
  EXPECT_EQ(restored->data(), original.data());
}

TEST(TensorIoTest, RequiresGradSurvives) {
  const Tensor grad_tensor = Tensor::Full(2, 2, 1.0f, /*requires_grad=*/true);
  BlobWriter writer;
  WriteTensor(grad_tensor, &writer);
  BlobReader reader(writer.buffer());
  StatusOr<Tensor> restored = ReadTensor(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->requires_grad());
}

TEST(TensorIoTest, ReadIntoWritesThroughSharedStorage) {
  // Tensor handles share storage; loading "into" a parameter must update
  // every alias (this is how optimizer-held handles see restored weights).
  const Tensor saved = Tensor::Full(2, 3, 7.5f);
  BlobWriter writer;
  WriteTensor(saved, &writer);

  Tensor parameter = Tensor::Zeros(2, 3);
  Tensor alias = parameter;  // shares storage
  BlobReader reader(writer.buffer());
  ASSERT_TRUE(ReadTensorInto(&reader, parameter).ok());
  EXPECT_EQ(alias.At(1, 2), 7.5f);
}

TEST(TensorIoTest, ReadIntoRejectsShapeMismatch) {
  const Tensor saved = Tensor::Zeros(2, 3);
  BlobWriter writer;
  WriteTensor(saved, &writer);
  BlobReader reader(writer.buffer());
  const Tensor wrong_shape = Tensor::Zeros(3, 2);
  const Status status = ReadTensorInto(&reader, wrong_shape);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(NamedTensorsTest, RoundTrip) {
  Rng rng(5);
  const Tensor w = Tensor::RandomNormal(3, 3, 1.0f, &rng);
  const Tensor b = Tensor::RandomNormal(1, 3, 1.0f, &rng);
  BlobWriter writer;
  WriteNamedTensors({{"w", w}, {"b", b}}, &writer);

  const Tensor w2 = Tensor::Zeros(3, 3);
  const Tensor b2 = Tensor::Zeros(1, 3);
  BlobReader reader(writer.buffer());
  ASSERT_TRUE(ReadNamedTensorsInto(&reader, {{"w", w2}, {"b", b2}}).ok());
  EXPECT_EQ(w2.data(), w.data());
  EXPECT_EQ(b2.data(), b.data());
}

TEST(NamedTensorsTest, NameMismatchRejected) {
  BlobWriter writer;
  WriteNamedTensors({{"weight", Tensor::Zeros(2, 2)}}, &writer);
  BlobReader reader(writer.buffer());
  const Status status =
      ReadNamedTensorsInto(&reader, {{"bias", Tensor::Zeros(2, 2)}});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(NamedTensorsTest, CountMismatchRejected) {
  BlobWriter writer;
  WriteNamedTensors({{"w", Tensor::Zeros(2, 2)}}, &writer);
  BlobReader reader(writer.buffer());
  const Status status = ReadNamedTensorsInto(
      &reader, {{"w", Tensor::Zeros(2, 2)}, {"b", Tensor::Zeros(1, 2)}});
  EXPECT_FALSE(status.ok());
}

// ------------------------------------------------------- checkpoint files

std::string OneSectionFile(const std::string& payload) {
  CheckpointWriter writer;
  writer.AddSection("data", payload);
  return writer.Serialize();
}

TEST(CheckpointTest, SectionsRoundTrip) {
  CheckpointWriter writer;
  writer.AddSection("alpha", "first payload");
  writer.AddSection("beta", "second");
  StatusOr<CheckpointReader> reader = CheckpointReader::Parse(
      writer.Serialize());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->HasSection("alpha"));
  EXPECT_TRUE(reader->HasSection("beta"));
  EXPECT_FALSE(reader->HasSection("gamma"));

  StatusOr<BlobReader> section = reader->Section("alpha");
  ASSERT_TRUE(section.ok());
  std::string_view bytes;
  ASSERT_TRUE(section->ReadRaw(13, &bytes).ok());
  EXPECT_EQ(bytes, "first payload");
}

TEST(CheckpointTest, MissingSectionIsNotFound) {
  StatusOr<CheckpointReader> reader =
      CheckpointReader::Parse(OneSectionFile("x"));
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->Section("nope").status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, RejectsBadMagic) {
  std::string file = OneSectionFile("payload");
  file[0] = 'X';
  const StatusOr<CheckpointReader> reader =
      CheckpointReader::Parse(std::move(file));
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, RejectsFutureVersion) {
  std::string file = OneSectionFile("payload");
  file[4] = static_cast<char>(kCheckpointVersion + 1);  // little-endian LSB
  const StatusOr<CheckpointReader> reader =
      CheckpointReader::Parse(std::move(file));
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, RejectsFlippedPayloadByte) {
  std::string file = OneSectionFile("payload bytes under CRC");
  // Flip one bit in the payload (stored at the tail of the file).
  file[file.size() - 3] ^= 0x10;
  const StatusOr<CheckpointReader> reader =
      CheckpointReader::Parse(std::move(file));
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("CRC32"), std::string::npos);
}

TEST(CheckpointTest, RejectsTruncation) {
  const std::string file = OneSectionFile("payload");
  // Every proper prefix must be rejected, whatever the cut point.
  for (size_t keep = 0; keep < file.size(); ++keep) {
    const StatusOr<CheckpointReader> reader =
        CheckpointReader::Parse(file.substr(0, keep));
    EXPECT_FALSE(reader.ok()) << "prefix of " << keep << " bytes parsed";
  }
}

TEST(CheckpointTest, RejectsTrailingGarbage) {
  const StatusOr<CheckpointReader> reader =
      CheckpointReader::Parse(OneSectionFile("payload") + "junk");
  EXPECT_FALSE(reader.ok());
}

TEST(CheckpointTest, RejectsForeignFile) {
  const StatusOr<CheckpointReader> reader =
      CheckpointReader::Parse("name,value\nfoo,1\n");
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ file writes

TEST(AtomicWriteTest, WritesAndOverwrites) {
  const std::string path = ::testing::TempDir() + "/adamel_atomic_test.bin";
  ASSERT_TRUE(AtomicWriteFile(path, "first").ok());
  StatusOr<std::string> contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "first");

  ASSERT_TRUE(AtomicWriteFile(path, "second, longer contents").ok());
  contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "second, longer contents");
}

TEST(AtomicWriteTest, MissingDirectoryIsIoError) {
  const Status status =
      AtomicWriteFile("/nonexistent_dir_xyz/file.bin", "data");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(CheckpointTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/adamel_ckpt_test.ckpt";
  CheckpointWriter writer;
  writer.AddSection("data", "some payload");
  ASSERT_TRUE(writer.WriteFile(path).ok());
  const StatusOr<CheckpointReader> reader = CheckpointReader::ReadFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->HasSection("data"));
}

TEST(CheckpointTest, MissingFileIsIoError) {
  EXPECT_EQ(CheckpointReader::ReadFile("/nonexistent/nope.ckpt")
                .status()
                .code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace adamel::nn
