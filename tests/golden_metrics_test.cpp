// Golden-metrics regression suite: fixed-seed PRAUC / best-F1 for every
// model in the comparison roster (AdaMEL variants + all five baselines) on
// a small synthetic Monitor world, checked against tests/golden/*.json.
//
// A genuine behavior change (new default hyperparameter, different
// initialization, altered feature pipeline) shows up here as a metric
// drift before it shows up in a paper table. To bless an intentional
// change, regenerate the goldens:
//
//   ./tests/golden_metrics_test --update_golden
//
// and commit the rewritten JSON. Tolerances absorb platform-level
// floating-point wiggle (libm differences), not behavior changes; the
// suite also proves the metrics are thread-count-invariant and that the
// tolerance band is tight enough to catch a perturbed hyperparameter.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/common.h"
#include "bench/harness.h"
#include "common/parallel.h"
#include "common/status.h"
#include "core/config.h"
#include "core/trainer.h"
#include "datagen/monitor_world.h"
#include "eval/metrics.h"
#include "obs/export.h"

#ifndef ADAMEL_GOLDEN_DIR
#define ADAMEL_GOLDEN_DIR "tests/golden"
#endif

namespace adamel {
namespace {

bool g_update_golden = false;

// Metrics must agree with the goldens to within this band at any thread
// count and across toolchains. Empirically the run-to-run spread on one
// machine is 0 (the stack is bitwise deterministic); 0.02 leaves room for
// libm/platform drift while still failing on real hyperparameter changes
// (see PerturbedHyperparameterEscapesTolerance).
constexpr double kTolerance = 0.02;

struct ModelMetrics {
  double prauc = 0.0;
  double f1 = 0.0;
};

// The golden world: small enough to train the full roster in seconds,
// large enough that metrics sit strictly between chance and saturation so
// drift in either direction is visible.
datagen::MelTask MakeGoldenTask() {
  datagen::MonitorTaskOptions options;
  options.seed = 24;
  options.train_pairs = 400;
  options.test_positives = 60;
  options.test_negatives = 200;
  options.target_unlabeled_pairs = 300;
  return datagen::MakeMonitorTask(options);
}

core::AdamelConfig GoldenAdamelConfig() {
  core::AdamelConfig config;
  config.epochs = 4;
  return config;
}

baselines::BaselineConfig GoldenBaselineConfig() {
  baselines::BaselineConfig config;
  config.epochs = 2;
  config.max_train_pairs = 150;
  return config;
}

ModelMetrics ComputeMetrics(const std::string& name,
                            const datagen::MelTask& task,
                            const core::AdamelConfig& adamel_config,
                            const baselines::BaselineConfig& baseline_config) {
  auto model =
      bench::MakeModel(name, 42, adamel_config, baseline_config);
  EXPECT_NE(model, nullptr) << name;
  core::MelInputs inputs;
  inputs.source_train = &task.source_train;
  inputs.target_unlabeled = &task.target_unlabeled;
  inputs.support = &task.support;
  const Status fit_status = model->Fit(inputs);
  EXPECT_TRUE(fit_status.ok()) << fit_status.ToString();
  const std::vector<float> scores = model->ScorePairs(task.test).value();
  const std::vector<int> labels = bench::TestLabels(task.test);
  ModelMetrics metrics;
  metrics.prauc = eval::AveragePrecision(scores, labels);
  metrics.f1 = eval::BestF1(scores, labels);
  return metrics;
}

// Trains the whole roster exactly once per process; every test reads from
// this cache.
const std::map<std::string, ModelMetrics>& ComputedMetrics() {
  static const std::map<std::string, ModelMetrics> metrics = [] {
    const datagen::MelTask task = MakeGoldenTask();
    std::map<std::string, ModelMetrics> out;
    for (const std::string& name : bench::ComparisonModelNames()) {
      out[name] = ComputeMetrics(name, task, GoldenAdamelConfig(),
                                 GoldenBaselineConfig());
    }
    return out;
  }();
  return metrics;
}

std::string GoldenPath() {
  return std::string(ADAMEL_GOLDEN_DIR) + "/monitor_small.json";
}

// Shortest decimal form that round-trips, so regenerated goldens diff
// cleanly (same scheme as the telemetry JSON exporter).
std::string FormatDouble(double value) {
  char buffer[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) {
      break;
    }
  }
  return buffer;
}

void WriteGoldenFile(const std::map<std::string, ModelMetrics>& metrics) {
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, m] : metrics) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "  \"" + name + "\": {\"f1\": " + FormatDouble(m.f1) +
           ", \"prauc\": " + FormatDouble(m.prauc) + "}";
  }
  out += "\n}\n";
  std::ofstream file(GoldenPath(), std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(file.good()) << "cannot open " << GoldenPath();
  file << out;
  file.flush();
  ASSERT_TRUE(file.good()) << "write failed: " << GoldenPath();
}

StatusOr<std::map<std::string, double>> ReadGoldenFile() {
  std::ifstream file(GoldenPath(), std::ios::binary);
  if (!file) {
    return IoError("cannot open golden file: " + GoldenPath() +
                   " (run with --update_golden to generate)");
  }
  std::ostringstream text;
  text << file.rdbuf();
  return obs::FlatJsonParse(text.str());
}

TEST(GoldenMetricsTest, RosterMatchesGoldenFile) {
  const std::map<std::string, ModelMetrics>& computed = ComputedMetrics();
  if (g_update_golden) {
    WriteGoldenFile(computed);
    for (const auto& [name, m] : computed) {
      std::printf("updated %-18s prauc=%.6f f1=%.6f\n", name.c_str(),
                  m.prauc, m.f1);
    }
    return;
  }
  const StatusOr<std::map<std::string, double>> golden = ReadGoldenFile();
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  for (const std::string& name : bench::ComparisonModelNames()) {
    const auto& m = computed.at(name);
    ASSERT_EQ(golden.value().count(name + "/prauc"), 1u)
        << name << " missing from " << GoldenPath()
        << " (run with --update_golden)";
    const double golden_prauc = golden.value().at(name + "/prauc");
    const double golden_f1 = golden.value().at(name + "/f1");
    EXPECT_NEAR(m.prauc, golden_prauc, kTolerance) << name;
    EXPECT_NEAR(m.f1, golden_f1, kTolerance) << name;
  }
}

TEST(GoldenMetricsTest, GoldenFileCoversExactlyTheRoster) {
  if (g_update_golden) {
    GTEST_SKIP() << "regenerating goldens";
  }
  const StatusOr<std::map<std::string, double>> golden = ReadGoldenFile();
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  // Two flat entries (prauc, f1) per roster model, nothing else — a model
  // renamed or dropped from the roster must be reflected in the golden.
  EXPECT_EQ(golden.value().size(),
            2 * bench::ComparisonModelNames().size());
}

TEST(GoldenMetricsTest, MetricsAreThreadCountInvariant) {
  const datagen::MelTask task = MakeGoldenTask();
  SetNumThreads(1);
  const ModelMetrics serial = ComputeMetrics(
      "AdaMEL-hyb", task, GoldenAdamelConfig(), GoldenBaselineConfig());
  SetNumThreads(4);
  const ModelMetrics pooled = ComputeMetrics(
      "AdaMEL-hyb", task, GoldenAdamelConfig(), GoldenBaselineConfig());
  SetNumThreads(0);  // restore env/hardware default
  // The compute stack guarantees bitwise thread-count invariance (fixed
  // chunk boundaries, chunk-order reductions), so this is exact equality,
  // not a tolerance check.
  EXPECT_EQ(serial.prauc, pooled.prauc);
  EXPECT_EQ(serial.f1, pooled.f1);
}

TEST(GoldenMetricsTest, QuantizedScoringStaysInsideGoldenBands) {
  if (g_update_golden) {
    GTEST_SKIP() << "regenerating goldens";
  }
  // The int8 serving path is NOT bitwise equal to fp32 — its accuracy
  // contract is exactly this: PRAUC/F1 on the golden task stay inside the
  // same tolerance band as the fp32 scores. A quantization scheme that
  // degrades the model shows up here.
  const StatusOr<std::map<std::string, double>> golden = ReadGoldenFile();
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  const datagen::MelTask task = MakeGoldenTask();
  auto model = bench::MakeModel("AdaMEL-hyb", 42, GoldenAdamelConfig(),
                                GoldenBaselineConfig());
  ASSERT_NE(model, nullptr);
  core::MelInputs inputs;
  inputs.source_train = &task.source_train;
  inputs.target_unlabeled = &task.target_unlabeled;
  inputs.support = &task.support;
  ASSERT_TRUE(model->Fit(inputs).ok());
  ASSERT_FALSE(model->SupportsQuantizedScoring());
  const int calib = std::min(256, task.source_train.size());
  ASSERT_TRUE(model
                  ->EnableQuantizedScoring(
                      data::PairSpan(task.source_train).Subspan(0, calib))
                  .ok());
  ASSERT_TRUE(model->SupportsQuantizedScoring());
  const std::vector<float> scores =
      model->ScorePairsQuantized(task.test).value();
  const std::vector<int> labels = bench::TestLabels(task.test);
  EXPECT_NEAR(eval::AveragePrecision(scores, labels),
              golden.value().at("AdaMEL-hyb/prauc"), kTolerance);
  EXPECT_NEAR(eval::BestF1(scores, labels),
              golden.value().at("AdaMEL-hyb/f1"), kTolerance);
}

TEST(GoldenMetricsTest, PerturbedHyperparameterEscapesTolerance) {
  if (g_update_golden) {
    GTEST_SKIP() << "regenerating goldens";
  }
  // The tolerance band must be tight enough that a real hyperparameter
  // change fails the suite: halving the training schedule has to move the
  // flagship model's PRAUC outside the band.
  const StatusOr<std::map<std::string, double>> golden = ReadGoldenFile();
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  const datagen::MelTask task = MakeGoldenTask();
  core::AdamelConfig perturbed = GoldenAdamelConfig();
  perturbed.epochs = 1;
  const ModelMetrics metrics = ComputeMetrics("AdaMEL-hyb", task, perturbed,
                                              GoldenBaselineConfig());
  EXPECT_GT(std::abs(metrics.prauc - golden.value().at("AdaMEL-hyb/prauc")),
            kTolerance);
}

// Mean per-pair |candidate - incumbent| over the golden test set — the
// exact statistic the serving lifecycle's shadow phase accumulates before
// its promote/rollback verdict.
double ShadowMeanAbsDelta(const std::vector<float>& incumbent,
                          const std::vector<float>& candidate) {
  EXPECT_EQ(incumbent.size(), candidate.size());
  double sum = 0.0;
  for (size_t i = 0; i < incumbent.size(); ++i) {
    sum += std::abs(static_cast<double>(candidate[i]) -
                    static_cast<double>(incumbent[i]));
  }
  return incumbent.empty() ? 0.0 : sum / static_cast<double>(incumbent.size());
}

// Shadow-comparison fixture for the live lifecycle: a candidate is
// promoted iff its mean |score delta| against the incumbent stays inside
// the same 2% band this suite uses for offline metrics
// (LifecycleOptions::max_mean_abs_delta defaults to kTolerance). Both
// sides of that verdict must be reachable: a checkpoint round-trip of the
// flagship — the healthy-upgrade stand-in — sits at exactly 0, and a
// deliberately mis-trained candidate (different init, truncated schedule)
// lands far outside. If either assertion fails, the serving band and the
// offline band have drifted apart and one of them is lying.
TEST(GoldenMetricsTest, ShadowComparisonBandSeparatesHealthyFromCorrupt) {
  const datagen::MelTask task = MakeGoldenTask();
  core::MelInputs inputs;
  inputs.source_train = &task.source_train;
  inputs.target_unlabeled = &task.target_unlabeled;
  inputs.support = &task.support;

  auto incumbent = bench::MakeModel("AdaMEL-hyb", 42, GoldenAdamelConfig(),
                                    GoldenBaselineConfig());
  ASSERT_NE(incumbent, nullptr);
  const Status fitted = incumbent->Fit(inputs);
  ASSERT_TRUE(fitted.ok()) << fitted.ToString();
  const std::vector<float> incumbent_scores =
      incumbent->ScorePairs(task.test).value();

  // Healthy candidate: the incumbent's checkpoint loaded into a fresh
  // model. Scores are bitwise identical, so the shadow delta is 0.
  const std::string path =
      ::testing::TempDir() + "/golden_shadow_roundtrip.ckpt";
  ASSERT_TRUE(incumbent->SaveCheckpoint(path).ok());
  auto healthy = bench::MakeModel("AdaMEL-hyb", 42, GoldenAdamelConfig(),
                                  GoldenBaselineConfig());
  ASSERT_TRUE(healthy->LoadCheckpoint(path).ok());
  const std::vector<float> healthy_scores =
      healthy->ScorePairs(task.test).value();
  EXPECT_EQ(healthy_scores, incumbent_scores);
  EXPECT_LE(ShadowMeanAbsDelta(incumbent_scores, healthy_scores),
            kTolerance);

  // Corrupted candidate: different seed and a truncated schedule. Must
  // fail the band — otherwise shadow mode would wave through a model that
  // never converged.
  core::AdamelConfig corrupted_config = GoldenAdamelConfig();
  corrupted_config.epochs = 1;
  auto corrupted = bench::MakeModel("AdaMEL-hyb", 7, corrupted_config,
                                    GoldenBaselineConfig());
  const Status corrupted_fitted = corrupted->Fit(inputs);
  ASSERT_TRUE(corrupted_fitted.ok()) << corrupted_fitted.ToString();
  EXPECT_GT(ShadowMeanAbsDelta(incumbent_scores,
                               corrupted->ScorePairs(task.test).value()),
            kTolerance);
}

}  // namespace
}  // namespace adamel

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update_golden") {
      adamel::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
