// Tests for src/baselines: the five comparison methods behave as learners
// (fit, probabilistic predictions, better than chance on an easy task) and
// their method-specific pieces (TLER features, Ditto serialization,
// EntityMatcher alignment) satisfy their contracts.

#include <memory>

#include <gtest/gtest.h>

#include "baselines/common.h"
#include "baselines/cordel.h"
#include "baselines/deepmatcher.h"
#include "baselines/ditto_like.h"
#include "baselines/entitymatcher.h"
#include "baselines/tler.h"
#include "eval/metrics.h"

namespace adamel::baselines {
namespace {

data::LabeledPair MakePair(std::vector<std::string> left,
                           std::vector<std::string> right, int label) {
  data::LabeledPair pair;
  pair.left.id = "l";
  pair.left.source = "a";
  pair.left.values = std::move(left);
  pair.right.id = "r";
  pair.right.source = "b";
  pair.right.values = std::move(right);
  pair.label = label;
  return pair;
}

data::PairDataset EasyDataset(int n, uint64_t seed) {
  Rng rng(seed);
  data::PairDataset dataset(data::Schema({"title", "year"}));
  for (int i = 0; i < n; ++i) {
    const bool match = rng.Bernoulli(0.5);
    const std::string title =
        "item alpha" + std::to_string(rng.UniformInt(40));
    const std::string other =
        match ? title : "item beta" + std::to_string(rng.UniformInt(40));
    dataset.Add(MakePair({title, "2001"}, {other, "2001"},
                         match ? data::kMatch : data::kNonMatch));
  }
  return dataset;
}

BaselineConfig FastConfig() {
  BaselineConfig config;
  config.epochs = 4;
  config.max_train_pairs = 200;
  return config;
}

std::vector<int> Labels(const data::PairDataset& dataset) {
  std::vector<int> labels;
  for (const auto& pair : dataset.pairs()) {
    labels.push_back(pair.label == data::kMatch ? 1 : 0);
  }
  return labels;
}

// ---------------------------------------------------------------- common

TEST(TokenizeDatasetTest, ShapesAndCrop) {
  const data::PairDataset dataset = EasyDataset(5, 1);
  const auto tokenized = TokenizeDataset(dataset, 1);
  ASSERT_EQ(tokenized.size(), 5u);
  EXPECT_EQ(tokenized[0].left_tokens.size(), 2u);
  EXPECT_LE(tokenized[0].left_tokens[0].size(), 1u);  // cropped
}

TEST(EmbedSequenceTest, EmptyYieldsMissingRow) {
  const text::HashTextEmbedding embedding(text::EmbeddingOptions{.dim = 8});
  const nn::Tensor t = EmbedSequence(embedding, {});
  EXPECT_EQ(t.rows(), 1);
  EXPECT_EQ(t.cols(), 8);
  EXPECT_EQ(t.ToVector(), embedding.missing_value_vector());
}

TEST(EmbedSequenceTest, OneRowPerToken) {
  const text::HashTextEmbedding embedding(text::EmbeddingOptions{.dim = 8});
  EXPECT_EQ(EmbedSequence(embedding, {"a", "b", "c"}).rows(), 3);
}

TEST(CapTrainingPairsTest, CapsOnlyWhenNeeded) {
  const data::PairDataset dataset = EasyDataset(50, 2);
  Rng rng(3);
  EXPECT_EQ(CapTrainingPairs(dataset, 20, &rng).size(), 20);
  EXPECT_EQ(CapTrainingPairs(dataset, 100, &rng).size(), 50);
  EXPECT_EQ(CapTrainingPairs(dataset, 0, &rng).size(), 50);
}

// ------------------------------------------------------------------ TLER

TEST(TlerFeaturesTest, BoundsAndWidth) {
  const auto row = TlerModel::SimilarityFeatures(
      MakePair({"hello world", "2001"}, {"hello there", "2002"}, 1), 2, 8);
  EXPECT_EQ(row.size(), 2u * TlerModel::kFeaturesPerAttribute);
  for (float v : row) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(TlerFeaturesTest, MissingValuesProduceZeros) {
  const auto row =
      TlerModel::SimilarityFeatures(MakePair({"", "x"}, {"y", "x"}, 1), 2, 8);
  for (int f = 0; f < TlerModel::kFeaturesPerAttribute; ++f) {
    EXPECT_EQ(row[f], 0.0f);
  }
}

TEST(TlerFeaturesTest, IdenticalValuesScoreHigh) {
  const auto row = TlerModel::SimilarityFeatures(
      MakePair({"same title"}, {"same title"}, 1), 1, 8);
  EXPECT_FLOAT_EQ(row[0], 1.0f);  // levenshtein sim
  EXPECT_FLOAT_EQ(row[2], 1.0f);  // exact match
}

// -------------------------------------------------- all models end-to-end

std::vector<std::unique_ptr<core::EntityLinkageModel>> AllBaselines() {
  std::vector<std::unique_ptr<core::EntityLinkageModel>> models;
  models.push_back(std::make_unique<TlerModel>(FastConfig()));
  models.push_back(std::make_unique<DeepMatcherModel>(FastConfig()));
  models.push_back(std::make_unique<EntityMatcherModel>(FastConfig()));
  models.push_back(std::make_unique<CorDelModel>(FastConfig()));
  models.push_back(std::make_unique<DittoLikeModel>(FastConfig()));
  return models;
}

TEST(AllBaselinesTest, FitPredictBeatsChanceOnEasyTask) {
  const data::PairDataset train = EasyDataset(200, 4);
  const data::PairDataset test = EasyDataset(100, 5);
  const std::vector<int> labels = Labels(test);
  core::MelInputs inputs;
  inputs.source_train = &train;
  for (auto& model : AllBaselines()) {
    ASSERT_TRUE(model->Fit(inputs).ok()) << model->Name();
    const std::vector<float> scores = model->ScorePairs(test).value();
    ASSERT_EQ(scores.size(), 100u) << model->Name();
    for (float s : scores) {
      EXPECT_GE(s, 0.0f);
      EXPECT_LE(s, 1.0f);
    }
    // Prevalence is ~0.5; any learner should clear 0.7 on this easy task.
    EXPECT_GT(eval::AveragePrecision(scores, labels), 0.7)
        << model->Name();
    EXPECT_GT(model->ParameterCount(), 0) << model->Name();
  }
}

TEST(AllBaselinesTest, NamesAreStable) {
  const auto models = AllBaselines();
  EXPECT_EQ(models[0]->Name(), "TLER");
  EXPECT_EQ(models[1]->Name(), "DeepMatcher");
  EXPECT_EQ(models[2]->Name(), "EntityMatcher");
  EXPECT_EQ(models[3]->Name(), "CorDel-Attention");
  EXPECT_EQ(models[4]->Name(), "Ditto-like");
}

TEST(AllBaselinesTest, PredictHandlesWiderSchema) {
  // Prediction datasets may carry extra attributes (MEL ontology union);
  // models must reproject onto their training schema.
  const data::PairDataset train = EasyDataset(100, 6);
  data::PairDataset wide_test =
      EasyDataset(30, 7).Reproject(data::Schema({"title", "year", "extra"}));
  core::MelInputs inputs;
  inputs.source_train = &train;
  for (auto& model : AllBaselines()) {
    ASSERT_TRUE(model->Fit(inputs).ok()) << model->Name();
    EXPECT_EQ(model->ScorePairs(wide_test).value().size(), 30u) << model->Name();
  }
}

TEST(DittoSerializeTest, EmitsColValMarkers) {
  const data::Schema schema({"title", "year"});
  data::Record record;
  record.values = {"Abbey Road", "1969"};
  const text::Tokenizer tokenizer;
  const auto tokens = DittoLikeModel::Serialize(record, schema, tokenizer);
  // "col title val abbey road col year val 1969"
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0], "col");
  EXPECT_EQ(tokens[1], "title");
  EXPECT_EQ(tokens[2], "val");
  EXPECT_EQ(tokens[3], "abbey");
}

TEST(DeepMatcherTest, DeterministicWithSeed) {
  const data::PairDataset train = EasyDataset(60, 8);
  BaselineConfig config = FastConfig();
  config.epochs = 2;
  config.seed = 9;
  core::MelInputs inputs;
  inputs.source_train = &train;
  DeepMatcherModel a(config);
  DeepMatcherModel b(config);
  ASSERT_TRUE(a.Fit(inputs).ok());
  ASSERT_TRUE(b.Fit(inputs).ok());
  EXPECT_EQ(a.ScorePairs(train).value(), b.ScorePairs(train).value());
}

TEST(EntityMatcherTest, ParameterHeavyByDesign) {
  // The hierarchical matcher must dwarf AdaMEL's parameter count (the
  // Section 5.5 comparison). AdaMEL at the same scale is ~66k.
  const data::PairDataset train = EasyDataset(50, 10);
  core::MelInputs inputs;
  inputs.source_train = &train;
  EntityMatcherModel model(FastConfig());
  ASSERT_TRUE(model.Fit(inputs).ok());
  EXPECT_GT(model.ParameterCount(), 200000);
}

}  // namespace
}  // namespace adamel::baselines
