// Integration tests: the full pipeline from synthetic world generation
// through training to evaluation, exercising the module boundaries the way
// the experiment harness does. These use reduced sizes so the whole suite
// stays fast, but the assertions are the paper's directional claims.

#include <gtest/gtest.h>

#include "baselines/tler.h"
#include "bench/harness.h"
#include "core/trainer.h"
#include "data/csv.h"
#include "datagen/benchmark_worlds.h"
#include "datagen/monitor_world.h"
#include "datagen/music_world.h"
#include "eval/metrics.h"

namespace adamel {
namespace {

core::AdamelConfig FastConfig(uint64_t seed = 42) {
  core::AdamelConfig config;
  config.epochs = 15;
  config.seed = seed;
  return config;
}

std::vector<int> Labels(const data::PairDataset& dataset) {
  std::vector<int> labels;
  for (const auto& pair : dataset.pairs()) {
    labels.push_back(pair.label == data::kMatch ? 1 : 0);
  }
  return labels;
}

TEST(IntegrationTest, MusicTaskTrainsAllVariantsAboveChance) {
  datagen::MusicTaskOptions options;
  options.entity_type = datagen::MusicEntityType::kArtist;
  options.seed = 21;
  const datagen::MelTask task = datagen::MakeMusicTask(options);
  const std::vector<int> labels = Labels(task.test);
  const double prevalence =
      task.test.CountLabel(data::kMatch) / static_cast<double>(task.test.size());

  core::MelInputs inputs;
  inputs.source_train = &task.source_train;
  inputs.target_unlabeled = &task.target_unlabeled;
  inputs.support = &task.support;
  const core::AdamelTrainer trainer(FastConfig());
  for (const core::AdamelVariant variant :
       {core::AdamelVariant::kBase, core::AdamelVariant::kZero,
        core::AdamelVariant::kFew, core::AdamelVariant::kHyb}) {
    const core::TrainedAdamel model = trainer.Fit(variant, inputs);
    const double prauc =
        eval::AveragePrecision(model.ScorePairs(task.test), labels);
    EXPECT_GT(prauc, prevalence + 0.2)
        << core::AdamelVariantName(variant);
  }
}

TEST(IntegrationTest, AdaptationHelpsOnDisjointScenario) {
  // The paper's central claim, in miniature: with unseen target sources,
  // domain adaptation (zero/hyb) beats pure source supervision (base).
  datagen::MusicTaskOptions options;
  options.entity_type = datagen::MusicEntityType::kTrack;
  options.scenario = datagen::MelScenario::kDisjoint;
  options.seed = 22;
  const datagen::MelTask task = datagen::MakeMusicTask(options);
  const std::vector<int> labels = Labels(task.test);

  core::MelInputs inputs;
  inputs.source_train = &task.source_train;
  inputs.target_unlabeled = &task.target_unlabeled;
  inputs.support = &task.support;
  core::AdamelConfig config;
  config.seed = 42;
  const core::AdamelTrainer trainer(config);
  const double base = eval::AveragePrecision(
      trainer.Fit(core::AdamelVariant::kBase, inputs).ScorePairs(task.test),
      labels);
  const double hyb = eval::AveragePrecision(
      trainer.Fit(core::AdamelVariant::kHyb, inputs).ScorePairs(task.test),
      labels);
  EXPECT_GT(hyb, base);
}

TEST(IntegrationTest, PairDatasetsSurviveCsvRoundTripAndRetrain) {
  datagen::MusicTaskOptions options;
  options.seed = 23;
  const datagen::MelTask task = datagen::MakeMusicTask(options);

  const std::string path = ::testing::TempDir() + "/music_train.csv";
  ASSERT_TRUE(
      data::WriteCsvFile(path, data::PairDatasetToCsv(task.source_train))
          .ok());
  const auto loaded_table = data::ReadCsvFile(path);
  ASSERT_TRUE(loaded_table.ok());
  const auto loaded = data::PairDatasetFromCsv(*loaded_table);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), task.source_train.size());

  // Retraining from the round-tripped data gives identical predictions.
  core::MelInputs inputs_orig;
  inputs_orig.source_train = &task.source_train;
  core::MelInputs inputs_loaded;
  inputs_loaded.source_train = &*loaded;
  const core::AdamelTrainer trainer(FastConfig(7));
  const auto pred_orig =
      trainer.Fit(core::AdamelVariant::kBase, inputs_orig)
          .ScorePairs(task.test);
  const auto pred_loaded =
      trainer.Fit(core::AdamelVariant::kBase, inputs_loaded)
          .ScorePairs(task.test);
  EXPECT_EQ(pred_orig, pred_loaded);
}

TEST(IntegrationTest, HarnessRunsEveryComparisonModel) {
  datagen::MonitorTaskOptions options;
  options.seed = 24;
  options.train_pairs = 400;
  options.test_positives = 60;
  options.test_negatives = 200;
  options.target_unlabeled_pairs = 300;
  const datagen::MelTask task = datagen::MakeMonitorTask(options);
  for (const std::string& name : bench::ComparisonModelNames()) {
    core::AdamelConfig adamel_config;
    adamel_config.epochs = 4;
    baselines::BaselineConfig baseline_config;
    baseline_config.epochs = 2;
    baseline_config.max_train_pairs = 150;
    auto model = bench::MakeModel(name, 42, adamel_config, baseline_config);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->Name(), name);
    const double prauc = bench::FitAndScore(model.get(), task);
    EXPECT_GE(prauc, 0.0);
    EXPECT_LE(prauc, 1.0);
  }
}

TEST(IntegrationTest, AttributeProjectionPipeline) {
  // Table 5's machinery: project a task onto a subset of attributes and
  // retrain; the subset model must still be usable end-to-end.
  datagen::MusicTaskOptions options;
  options.seed = 25;
  const datagen::MelTask task = datagen::MakeMusicTask(options);
  const std::vector<std::string> subset = {"name", "main_performer",
                                           "name_native_language"};
  const data::PairDataset train = task.source_train.ProjectAttributes(subset);
  const data::PairDataset test = task.test.ProjectAttributes(subset);
  core::MelInputs inputs;
  inputs.source_train = &train;
  const core::AdamelTrainer trainer(FastConfig());
  const core::TrainedAdamel model =
      trainer.Fit(core::AdamelVariant::kBase, inputs);
  const double prauc =
      eval::AveragePrecision(model.ScorePairs(test), Labels(test));
  EXPECT_GT(prauc, 0.55);
  EXPECT_EQ(model.extractor().feature_count(), 6);
}

TEST(IntegrationTest, BenchmarkDifficultyOrderingHolds) {
  // The synthetic single-domain datasets must keep the paper's difficulty
  // ordering: easy (DBLP-ACM) >> hard (Walmart-Amazon) for a fixed learner.
  const auto specs = datagen::BenchmarkDatasets();
  const datagen::MelTask easy = datagen::MakeBenchmarkTask(specs[2], 9);
  const datagen::MelTask hard = datagen::MakeBenchmarkTask(specs[6], 9);
  auto score = [](const datagen::MelTask& task) {
    core::AdamelConfig config;
    config.epochs = 12;
    config.seed = 5;
    const core::AdamelTrainer trainer(config);
    core::MelInputs inputs;
    inputs.source_train = &task.source_train;
    const core::TrainedAdamel model =
        trainer.Fit(core::AdamelVariant::kBase, inputs);
    return eval::BestF1(model.ScorePairs(task.test), Labels(task.test));
  };
  EXPECT_GT(score(easy), score(hard) + 0.05);
}

TEST(IntegrationTest, IncrementalSeriesIsTrainableAcrossSteps) {
  const datagen::MonitorIncrementalSeries series =
      datagen::MakeMonitorIncrementalSeries(26);
  core::AdamelConfig config;
  config.epochs = 4;
  config.seed = 1;
  const core::AdamelTrainer trainer(config);
  // First and last step both train and evaluate cleanly.
  for (const size_t step : {size_t{0}, series.step_tests.size() - 1}) {
    const data::PairDataset unlabeled =
        series.step_tests[step].WithoutLabels();
    core::MelInputs inputs;
    inputs.source_train = &series.train;
    inputs.target_unlabeled = &unlabeled;
    inputs.support = &series.support;
    const core::TrainedAdamel model =
        trainer.Fit(core::AdamelVariant::kHyb, inputs);
    const double prauc = eval::AveragePrecision(
        model.ScorePairs(series.step_tests[step]),
        Labels(series.step_tests[step]));
    EXPECT_GT(prauc, 0.4) << "step " << step;
  }
}

}  // namespace
}  // namespace adamel
