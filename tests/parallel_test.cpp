// Tests for the deterministic thread-pool substrate (common/parallel.h) and
// for the bitwise thread-count invariance it guarantees across the compute
// stack: ops, featurization, and a full training epoch.

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/trainer.h"
#include "datagen/music_world.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace adamel {
namespace {

// Restores the default thread count even when a test fails mid-way.
class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { SetNumThreads(0); }
};

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  std::atomic<int> calls{0};
  ParallelFor(0, 0, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(5, 5, 8, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(7, 3, 2, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainLargerThanRangeRunsOneChunk) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelFor(2, 9, 100, [&](int64_t lo, int64_t hi) {
    chunks.emplace_back(lo, hi);  // single chunk: no concurrent writers
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 2);
  EXPECT_EQ(chunks[0].second, 9);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (const int threads : {1, 2, 4}) {
    SetNumThreads(threads);
    std::vector<std::atomic<int>> hits(1001);
    ParallelFor(1, 1001, 7, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        ++hits[static_cast<size_t>(i)];
      }
    });
    EXPECT_EQ(hits[0].load(), 0) << "threads=" << threads;
    for (size_t i = 1; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelForTest, ChunkBoundariesAreGrainAligned) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  std::vector<std::atomic<int>> chunk_sizes(5);
  ParallelFor(0, 42, 10, [&](int64_t lo, int64_t hi) {
    ASSERT_EQ(lo % 10, 0);
    ++chunk_sizes[static_cast<size_t>(lo / 10)];
    ASSERT_EQ(hi, lo + 10 < 42 ? lo + 10 : 42);
  });
  for (size_t c = 0; c < 5; ++c) {
    EXPECT_EQ(chunk_sizes[c].load(), 1) << "chunk " << c;
  }
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ThreadCountGuard guard;
  for (const int threads : {1, 4}) {
    SetNumThreads(threads);
    EXPECT_THROW(
        ParallelFor(0, 100, 1,
                    [](int64_t lo, int64_t) {
                      if (lo == 37) {
                        throw std::runtime_error("chunk failure");
                      }
                    }),
        std::runtime_error)
        << "threads=" << threads;
    // The pool must stay usable after an exception.
    std::atomic<int64_t> sum{0};
    ParallelFor(0, 10, 1, [&](int64_t lo, int64_t) { sum += lo; });
    EXPECT_EQ(sum.load(), 45) << "threads=" << threads;
  }
}

TEST(ParallelForTest, NestedCallsRunInline) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(0, 8, 1, [&](int64_t ob, int64_t oe) {
    for (int64_t o = ob; o < oe; ++o) {
      // A nested ParallelFor must not deadlock and must cover its range.
      ParallelFor(0, 8, 1, [&](int64_t ib, int64_t ie) {
        for (int64_t i = ib; i < ie; ++i) {
          ++hits[static_cast<size_t>(o * 8 + i)];
        }
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(ParallelForTest, SetNumThreadsControlsResolvedCount) {
  ThreadCountGuard guard;
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  SetNumThreads(0);
  EXPECT_GE(NumThreads(), 1);
}

TEST(ParallelReduceTest, BitwiseIdenticalAcrossThreadCounts) {
  std::vector<double> values(100000);
  for (size_t i = 0; i < values.size(); ++i) {
    // Values at many magnitudes so reassociation would change the result.
    values[i] = std::sin(static_cast<double>(i)) * std::pow(10.0, i % 7);
  }
  auto partial = [&](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) {
      acc += values[static_cast<size_t>(i)];
    }
    return acc;
  };
  auto combine = [](double x, double y) { return x + y; };

  ThreadCountGuard guard;
  SetNumThreads(1);
  const double serial = ParallelReduce<double>(
      0, static_cast<int64_t>(values.size()), 1024, 0.0, partial, combine);
  for (const int threads : {2, 4, 8}) {
    SetNumThreads(threads);
    const double parallel = ParallelReduce<double>(
        0, static_cast<int64_t>(values.size()), 1024, 0.0, partial, combine);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST(ParallelOpsTest, MatMulForwardAndBackwardBitwiseInvariant) {
  ThreadCountGuard guard;
  Rng rng(7);
  // Odd shapes exercise panel tails and uneven row chunks.
  nn::Tensor a = nn::Tensor::RandomNormal(129, 301, 1.0f, &rng, true);
  nn::Tensor b = nn::Tensor::RandomNormal(301, 77, 1.0f, &rng, true);

  std::vector<float> out1, ga1, gb1;
  for (const int threads : {1, 2, 4}) {
    SetNumThreads(threads);
    a.ZeroGrad();
    b.ZeroGrad();
    nn::Tensor loss = nn::Sum(nn::MatMul(a, b));
    loss.Backward();
    if (threads == 1) {
      out1 = loss.ToVector();
      ga1 = a.grad();
      gb1 = b.grad();
    } else {
      EXPECT_EQ(loss.ToVector(), out1) << "threads=" << threads;
      EXPECT_EQ(a.grad(), ga1) << "threads=" << threads;
      EXPECT_EQ(b.grad(), gb1) << "threads=" << threads;
    }
  }
}

TEST(ParallelOpsTest, ElementwiseAndSoftmaxBitwiseInvariant) {
  ThreadCountGuard guard;
  Rng rng(11);
  nn::Tensor x = nn::Tensor::RandomNormal(257, 129, 1.0f, &rng, true);
  nn::Tensor y = nn::Tensor::RandomNormal(257, 129, 1.0f, &rng, true);

  std::vector<float> loss1, gx1;
  for (const int threads : {1, 4}) {
    SetNumThreads(threads);
    x.ZeroGrad();
    y.ZeroGrad();
    nn::Tensor loss =
        nn::Sum(nn::Mul(nn::Softmax(nn::Tanh(x)), nn::Sigmoid(y)));
    loss.Backward();
    if (threads == 1) {
      loss1 = loss.ToVector();
      gx1 = x.grad();
    } else {
      EXPECT_EQ(loss.ToVector(), loss1) << "threads=" << threads;
      EXPECT_EQ(x.grad(), gx1) << "threads=" << threads;
    }
  }
}

// The end-to-end guarantee: a full Trainer epoch — featurization, forward,
// backward, optimizer steps — produces bitwise-identical loss and weights
// under ADAMEL_NUM_THREADS=1 and =4.
TEST(ParallelTrainingTest, TrainerEpochBitwiseDeterministicAcrossThreads) {
  datagen::MusicTaskOptions options;
  options.entity_type = datagen::MusicEntityType::kArtist;
  options.seed = 33;
  const datagen::MelTask task = datagen::MakeMusicTask(options);
  core::MelInputs inputs;
  inputs.source_train = &task.source_train;
  inputs.target_unlabeled = &task.target_unlabeled;
  inputs.support = &task.support;

  core::AdamelConfig config;
  config.epochs = 1;
  config.seed = 5;

  ThreadCountGuard guard;
  std::vector<core::EpochStats> history1, history4;
  SetNumThreads(1);
  const core::TrainedAdamel model1 =
      core::AdamelTrainer(config).Fit(core::AdamelVariant::kHyb, inputs,
                                      &history1);
  SetNumThreads(4);
  const core::TrainedAdamel model4 =
      core::AdamelTrainer(config).Fit(core::AdamelVariant::kHyb, inputs,
                                      &history4);

  ASSERT_EQ(history1.size(), history4.size());
  for (size_t e = 0; e < history1.size(); ++e) {
    EXPECT_EQ(history1[e].base_loss, history4[e].base_loss);
    EXPECT_EQ(history1[e].target_loss, history4[e].target_loss);
    EXPECT_EQ(history1[e].support_loss, history4[e].support_loss);
  }

  const std::vector<nn::Tensor> params1 = model1.model().Parameters();
  const std::vector<nn::Tensor> params4 = model4.model().Parameters();
  ASSERT_EQ(params1.size(), params4.size());
  for (size_t p = 0; p < params1.size(); ++p) {
    EXPECT_EQ(params1[p].ToVector(), params4[p].ToVector()) << "param " << p;
  }

  // Inference must agree bitwise too (parallel batch prediction).
  SetNumThreads(1);
  const std::vector<float> scores1 = model1.ScorePairs(task.test);
  SetNumThreads(4);
  const std::vector<float> scores4 = model1.ScorePairs(task.test);
  EXPECT_EQ(scores1, scores4);
}

}  // namespace
}  // namespace adamel
