// Tests for the ADAMEL_DEBUG_CHECKS invariant layer: post-op finiteness
// screening (NaN/Inf origin vs propagation), autograd single-use
// enforcement, live-node accounting, and the compiled-out behavior of
// ADAMEL_DCHECK. Registered in every build; the sections that need the
// checks compiled in skip themselves when the build has them off, so the
// same binary is meaningful under both -DADAMEL_DEBUG_CHECKS settings.

#include <cstdint>

#include <gtest/gtest.h>

#include "common/check.h"
#include "nn/debug_checks.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace adamel::nn {
namespace {

TEST(DebugChecksTest, DisabledBuildReportsItself) {
  if (debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "build has ADAMEL_DEBUG_CHECKS on";
  }
  EXPECT_EQ(debug::LiveNodeCount(), -1);
  EXPECT_EQ(debug::GetFiniteScreenMode(), debug::FiniteScreenMode::kOff);
  // Requesting a mode is a no-op when the hooks are compiled out.
  debug::SetFiniteScreenMode(debug::FiniteScreenMode::kFatal);
  EXPECT_EQ(debug::GetFiniteScreenMode(), debug::FiniteScreenMode::kOff);
  EXPECT_TRUE(debug::NonFiniteEvents().empty());
}

TEST(DebugChecksTest, DchecksCompileOutWithoutSideEffects) {
  if (debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "build has ADAMEL_DEBUG_CHECKS on";
  }
  int evaluations = 0;
  auto count_and_fail = [&evaluations]() {
    ++evaluations;
    return false;
  };
  // The disabled form must type-check its arguments but never run them.
  ADAMEL_DCHECK(count_and_fail()) << "unreachable";
  ADAMEL_DCHECK_EQ(1, 2);
  EXPECT_EQ(evaluations, 0);
}

TEST(DebugChecksTest, LogOfZeroIsAnOriginEvent) {
  if (!debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "needs -DADAMEL_DEBUG_CHECKS=ON";
  }
  debug::ScopedFiniteScreenMode record(debug::FiniteScreenMode::kRecord);
  debug::ClearNonFiniteEvents();

  const Tensor x = Tensor::FromVector(1, 2, {0.0f, 1.0f});
  const Tensor y = Log(x);            // log(0) = -inf: the origin
  const Tensor z = MulScalar(y, 2.0f);  // propagates the -inf
  ASSERT_TRUE(z.defined());

  const auto events = debug::NonFiniteEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].op, "Log");
  EXPECT_TRUE(events[0].is_origin);
  EXPECT_EQ(events[0].row, 0);
  EXPECT_EQ(events[0].col, 0);
  EXPECT_TRUE(events[0].value < 0.0f);  // -inf
  EXPECT_EQ(events[1].op, "MulScalar");
  EXPECT_FALSE(events[1].is_origin) << "poison flowed in, not created here";
  debug::ClearNonFiniteEvents();
}

TEST(DebugChecksTest, FiniteOpsRecordNothing) {
  if (!debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "needs -DADAMEL_DEBUG_CHECKS=ON";
  }
  debug::ScopedFiniteScreenMode record(debug::FiniteScreenMode::kRecord);
  debug::ClearNonFiniteEvents();
  const Tensor a = Tensor::Full(3, 3, 2.0f);
  const Tensor b = Softmax(MatMul(a, Transpose(a)));
  ASSERT_TRUE(b.defined());
  EXPECT_TRUE(debug::NonFiniteEvents().empty());
}

TEST(DebugChecksDeathTest, FatalModeAbortsAtOrigin) {
  if (!debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "needs -DADAMEL_DEBUG_CHECKS=ON";
  }
  EXPECT_DEATH(
      {
        debug::ScopedFiniteScreenMode fatal(debug::FiniteScreenMode::kFatal);
        const Tensor x = Tensor::FromVector(1, 1, {-1.0f});
        const Tensor y = Sqrt(x);  // sqrt(-1) = NaN at the origin op
        static_cast<void>(y);
      },
      "non-finite origin: Sqrt");
}

TEST(DebugChecksTest, LiveNodeCountTracksTensorLifetime) {
  if (!debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "needs -DADAMEL_DEBUG_CHECKS=ON";
  }
  const int64_t before = debug::LiveNodeCount();
  {
    const Tensor a = Tensor::Zeros(4, 4);
    const Tensor b = AddScalar(a, 1.0f);
    ASSERT_TRUE(b.defined());
    EXPECT_EQ(debug::LiveNodeCount(), before + 2);
  }
  EXPECT_EQ(debug::LiveNodeCount(), before);
}

TEST(DebugChecksTest, BackwardReleasesGraphNodes) {
  if (!debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "needs -DADAMEL_DEBUG_CHECKS=ON";
  }
  const int64_t before = debug::LiveNodeCount();
  {
    Tensor x = Tensor::FromVector(2, 2, {1.0f, 2.0f, 3.0f, 4.0f},
                                  /*requires_grad=*/true);
    Tensor loss = Sum(Square(x));
    loss.Backward();
    EXPECT_FLOAT_EQ(x.GradAt(0, 0), 2.0f);
  }
  // Every intermediate node must be released once the handles go away; a
  // backward_fn capturing its own output would keep the graph alive.
  EXPECT_EQ(debug::LiveNodeCount(), before);
}

TEST(DebugChecksDeathTest, DoubleBackwardIsFatal) {
  if (!debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "needs -DADAMEL_DEBUG_CHECKS=ON";
  }
  EXPECT_DEATH(
      {
        Tensor x = Tensor::FromVector(1, 1, {3.0f}, /*requires_grad=*/true);
        Tensor loss = Square(x);
        loss.Backward();
        loss.Backward();  // would double-accumulate into x.grad
      },
      "double Backward");
}

TEST(DebugChecksTest, ScopedModeRestoresPrevious) {
  if (!debug::kDebugChecksEnabled) {
    GTEST_SKIP() << "needs -DADAMEL_DEBUG_CHECKS=ON";
  }
  const debug::FiniteScreenMode outer = debug::GetFiniteScreenMode();
  {
    debug::ScopedFiniteScreenMode fatal(debug::FiniteScreenMode::kFatal);
    EXPECT_EQ(debug::GetFiniteScreenMode(),
              debug::FiniteScreenMode::kFatal);
  }
  EXPECT_EQ(debug::GetFiniteScreenMode(), outer);
}

}  // namespace
}  // namespace adamel::nn
