// Lock-order contract tests for the serving stack (DESIGN.md §8.4), meant
// to run under ThreadSanitizer (scripts/check.sh `tsan` stage and the CI
// tsan job), where a lock-order inversion or a callback invoked under a
// mutex surfaces as a deadlock report instead of a silent hang.
//
// The contracts exercised:
//   1. The service resolves models under the registry mutex (rank 1),
//      releases it, and only then submits to the batcher — the two locks
//      are never held together.
//   2. The batcher executes `ScorePairs` with no lock held
//      (`MicroBatcher::ExecuteBatch` is ADAMEL_EXCLUDES(mutex_)), so a
//      model is free to call back into the registry or the batcher's own
//      accessors while scoring.
//
// A `ReentrantModel` makes the second contract observable: its ScorePairs
// re-enters the registry (rank 1) and the batcher (rank 2). If a batch
// were executed under either mutex, these callbacks would self-deadlock or
// invert the documented order.

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/linkage_model.h"
#include "data/pair_dataset.h"
#include "serve/batcher.h"
#include "serve/registry.h"
#include "serve/service.h"

namespace adamel::serve {
namespace {

data::Record MakeRecord(std::vector<std::string> values) {
  data::Record record;
  record.id = "r";
  record.source = "s";
  record.values = std::move(values);
  return record;
}

data::PairDataset TinyDataset(int n) {
  data::PairDataset dataset(data::Schema({"key"}));
  for (int i = 0; i < n; ++i) {
    data::LabeledPair pair;
    pair.left = MakeRecord({"k" + std::to_string(i)});
    pair.right = MakeRecord({"k" + std::to_string(i)});
    pair.label = data::kMatch;
    dataset.Add(std::move(pair));
  }
  return dataset;
}

// A trivially-fitted model whose ScorePairs calls back into the serving
// layer. Both callbacks take locks (registry mutex_, batcher mutex_): if
// the batcher ran batches under either, this would deadlock; under TSan a
// lock-order inversion is reported even when timing hides the hang.
class ReentrantModel : public core::EntityLinkageModel {
 public:
  std::string Name() const override { return "ReentrantModel"; }

  Status Fit(const core::MelInputs& /*inputs*/) override { return OkStatus(); }

  StatusOr<std::vector<float>> ScorePairs(data::PairSpan batch) const override {
    if (service_ != nullptr) {
      // Rank 2 (batcher mutex) from inside batch execution: legal only
      // because ExecuteBatch holds no lock.
      (void)service_->queued_pairs();
      // Rank 1 (registry mutex) from inside batch execution: taking a
      // lower rank here is legal for the same reason — execution holds
      // nothing, so there is no held-lock edge at all.
      (void)service_->registry().List();
      (void)service_->registry().Get("reentrant", 1);
    }
    calls_.fetch_add(1, std::memory_order_relaxed);
    return std::vector<float>(static_cast<size_t>(batch.size()), 0.5f);
  }

  int64_t ParameterCount() const override { return 0; }

  void set_service(LinkageService* service) { service_ = service; }
  int calls() const { return calls_.load(std::memory_order_relaxed); }

 private:
  LinkageService* service_ = nullptr;
  mutable std::atomic<int> calls_{0};
};

ScoreRequest MakeRequest(int pairs) {
  ScoreRequest request;
  request.model = "reentrant";
  request.version = 1;
  request.pairs = TinyDataset(pairs);
  return request;
}

// Contract 2 in worker mode: models scored by batcher workers may re-enter
// the registry and the batcher's accessors.
TEST(DeadlockTest, ModelMayReenterServiceDuringWorkerExecution) {
  ServiceOptions options;
  options.batcher.worker_threads = 2;
  options.batcher.max_batch_delay_ns = 0;  // execute immediately
  LinkageService service(options);
  auto model = std::make_shared<ReentrantModel>();
  model->set_service(&service);
  ASSERT_TRUE(service.registry().Register("reentrant", 1, model).ok());

  std::vector<std::future<ScoreResponse>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(service.SubmitAsync(MakeRequest(4)));
  }
  for (auto& future : futures) {
    const ScoreResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.scores.size(), 4u);
  }
  EXPECT_GT(model->calls(), 0);
  service.Shutdown();
}

// Contract 2 in pump mode: RunOnce executes the batch on the calling
// thread, also outside the batcher mutex.
TEST(DeadlockTest, ModelMayReenterServiceDuringPump) {
  ServiceOptions options;
  options.batcher.worker_threads = 0;  // pump mode
  LinkageService service(options);
  auto model = std::make_shared<ReentrantModel>();
  model->set_service(&service);
  ASSERT_TRUE(service.registry().Register("reentrant", 1, model).ok());

  std::future<ScoreResponse> future = service.SubmitAsync(MakeRequest(3));
  ASSERT_EQ(service.PumpOnce(), 1);
  const ScoreResponse response = future.get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.scores.size(), 3u);
  EXPECT_EQ(model->calls(), 1);
}

// Contract 1 under churn: concurrent clients drive the registry->batcher
// submission path while other threads mutate the registry and the scoring
// model re-enters both. Every acquisition order that the design permits
// happens here at once; TSan verifies no two locks are ever held in
// conflicting order.
TEST(DeadlockTest, RegistryChurnConcurrentWithReentrantScoring) {
  ServiceOptions options;
  options.batcher.worker_threads = 2;
  options.batcher.max_batch_delay_ns = 0;
  LinkageService service(options);
  auto model = std::make_shared<ReentrantModel>();
  model->set_service(&service);
  ASSERT_TRUE(service.registry().Register("reentrant", 1, model).ok());

  constexpr int kClientThreads = 4;
  constexpr int kRequestsPerClient = 16;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kClientThreads + 1);
  for (int t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&service, &ok_count] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        ScoreResponse response = service.Score(MakeRequest(2));
        // Churn may remove the model between resolution attempts; both
        // outcomes are legal, only deadlock/corruption is not.
        if (response.status.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
        }
      }
    });
  }
  // Churn thread: register/remove a second version while clients score.
  threads.emplace_back([&service, &model] {
    for (int i = 0; i < 64; ++i) {
      (void)service.registry().Register("reentrant", 2, model);
      (void)service.registry().List();
      (void)service.registry().Remove("reentrant", 2);
    }
  });
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_GT(ok_count.load(), 0);
  service.Shutdown();
}

// Shutdown with requests still queued must drain them without the drain
// path calling out under the batcher mutex (drained requests re-enter the
// model too, via ExecuteBatch on the shutting-down thread).
TEST(DeadlockTest, ShutdownDrainsReentrantModelOutsideLock) {
  ServiceOptions options;
  options.batcher.worker_threads = 0;  // queue everything, drain on Shutdown
  LinkageService service(options);
  auto model = std::make_shared<ReentrantModel>();
  model->set_service(&service);
  ASSERT_TRUE(service.registry().Register("reentrant", 1, model).ok());

  std::vector<std::future<ScoreResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.SubmitAsync(MakeRequest(2)));
  }
  service.Shutdown();
  for (auto& future : futures) {
    const ScoreResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.scores.size(), 2u);
  }
  // The drain coalesces same-model requests, so one call may cover all 8.
  EXPECT_GE(model->calls(), 1);
}

}  // namespace
}  // namespace adamel::serve
