// Tests for src/text: tokenizer, contrastive token algebra, HashText
// embedding, string metrics, and TF-IDF summarization.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "text/embedding.h"
#include "text/string_metrics.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace adamel::text {
namespace {

// ------------------------------------------------------------- tokenizer

TEST(TokenizerTest, LowercasesAndSplitsWhitespace) {
  const Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("Hey Jude"),
            (std::vector<std::string>{"hey", "jude"}));
}

TEST(TokenizerTest, SplitsPunctuation) {
  const Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.Tokenize("P. M."),
            (std::vector<std::string>{"p", "m"}));
  EXPECT_EQ(tokenizer.Tokenize("rock/pop,jazz"),
            (std::vector<std::string>{"rock", "pop", "jazz"}));
}

TEST(TokenizerTest, KeepsPunctuationWhenDisabled) {
  TokenizerOptions options;
  options.split_punctuation = false;
  const Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("a-b c"),
            (std::vector<std::string>{"a-b", "c"}));
}

TEST(TokenizerTest, CropLimitsTokenCount) {
  TokenizerOptions options;
  options.crop_size = 3;
  const Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("one two three four five").size(), 3u);
}

TEST(TokenizerTest, ZeroCropMeansUnlimited) {
  TokenizerOptions options;
  options.crop_size = 0;
  const Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.Tokenize("a b c d e f g h i j k l").size(), 12u);
}

TEST(TokenizerTest, EmptyInputYieldsNoTokens) {
  const Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("  \t ").empty());
}

TEST(TokenizerTest, Utf8BytesPassThrough) {
  const Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("Müller Straße");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "müller");  // ASCII M lowered, ü untouched
}

TEST(ContrastTokensTest, PartitionsSharedAndUnique) {
  const TokenContrast contrast =
      ContrastTokens({"hey", "jude", "remix"}, {"hey", "jude", "original"});
  EXPECT_EQ(contrast.shared, (std::vector<std::string>{"hey", "jude"}));
  const std::set<std::string> unique(contrast.unique.begin(),
                                     contrast.unique.end());
  EXPECT_EQ(unique, (std::set<std::string>{"remix", "original"}));
}

TEST(ContrastTokensTest, DuplicatesCollapse) {
  const TokenContrast contrast = ContrastTokens({"a", "a", "b"}, {"a"});
  EXPECT_EQ(contrast.shared, (std::vector<std::string>{"a"}));
  EXPECT_EQ(contrast.unique, (std::vector<std::string>{"b"}));
}

TEST(ContrastTokensTest, IdenticalSetsHaveNoUnique) {
  const TokenContrast contrast = ContrastTokens({"x", "y"}, {"y", "x"});
  EXPECT_EQ(contrast.shared.size(), 2u);
  EXPECT_TRUE(contrast.unique.empty());
}

TEST(ContrastTokensTest, DisjointSetsHaveNoShared) {
  const TokenContrast contrast = ContrastTokens({"x"}, {"y"});
  EXPECT_TRUE(contrast.shared.empty());
  EXPECT_EQ(contrast.unique.size(), 2u);
}

// Property sweep: shared ∪ unique == union of both sets; shared ⊆ both.
class ContrastSweep
    : public ::testing::TestWithParam<
          std::pair<std::vector<std::string>, std::vector<std::string>>> {};

TEST_P(ContrastSweep, SetAlgebraInvariants) {
  const auto& [left, right] = GetParam();
  const TokenContrast contrast = ContrastTokens(left, right);
  const std::set<std::string> left_set(left.begin(), left.end());
  const std::set<std::string> right_set(right.begin(), right.end());
  std::set<std::string> all(left_set);
  all.insert(right_set.begin(), right_set.end());
  std::set<std::string> reconstructed(contrast.shared.begin(),
                                      contrast.shared.end());
  reconstructed.insert(contrast.unique.begin(), contrast.unique.end());
  EXPECT_EQ(reconstructed, all);
  for (const std::string& token : contrast.shared) {
    EXPECT_TRUE(left_set.count(token) && right_set.count(token));
  }
  EXPECT_EQ(contrast.shared.size() + contrast.unique.size(), all.size());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ContrastSweep,
    ::testing::Values(
        std::make_pair(std::vector<std::string>{}, std::vector<std::string>{}),
        std::make_pair(std::vector<std::string>{"a"},
                       std::vector<std::string>{}),
        std::make_pair(std::vector<std::string>{"a", "b", "c"},
                       std::vector<std::string>{"b", "c", "d"}),
        std::make_pair(std::vector<std::string>{"x", "x", "y"},
                       std::vector<std::string>{"y", "z", "z"})));

// ------------------------------------------------------------- embedding

TEST(HashTextTest, Deterministic) {
  const HashTextEmbedding a;
  const HashTextEmbedding b;
  EXPECT_EQ(a.EmbedToken("beatles"), b.EmbedToken("beatles"));
}

TEST(HashTextTest, TokenVectorsAreUnitNorm) {
  const HashTextEmbedding embedding;
  for (const char* token : {"a", "hello", "supercalifragilistic"}) {
    double norm = 0.0;
    for (float v : embedding.EmbedToken(token)) {
      norm += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4) << token;
  }
}

TEST(HashTextTest, MissingVectorIsFixedNonZeroUnit) {
  const HashTextEmbedding embedding;
  const std::vector<float>& missing = embedding.missing_value_vector();
  double norm = 0.0;
  for (float v : missing) {
    norm += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
  EXPECT_EQ(embedding.EmbedToken(""), missing);
  EXPECT_EQ(embedding.EmbedTokens({}), missing);
}

TEST(HashTextTest, SurfaceSimilarTokensAreCloser) {
  // FastText's key property: subword sharing puts typo variants closer
  // together than unrelated tokens.
  const HashTextEmbedding embedding;
  const auto base = embedding.EmbedToken("guitarist");
  const float typo_sim =
      CosineSimilarity(base, embedding.EmbedToken("guitarists"));
  const float unrelated_sim =
      CosineSimilarity(base, embedding.EmbedToken("xylophone"));
  EXPECT_GT(typo_sim, unrelated_sim);
  EXPECT_GT(typo_sim, 0.5f);
}

TEST(HashTextTest, SumOfTokensEqualsEmbedTokens) {
  const HashTextEmbedding embedding;
  const auto a = embedding.EmbedToken("hey");
  const auto b = embedding.EmbedToken("jude");
  const auto sum = embedding.EmbedTokens({"hey", "jude"});
  for (size_t i = 0; i < sum.size(); ++i) {
    EXPECT_NEAR(sum[i], a[i] + b[i], 1e-5);
  }
}

TEST(HashTextTest, WeightedSumAppliesWeights) {
  const HashTextEmbedding embedding;
  const auto weighted =
      embedding.EmbedTokensWeighted({"hey", "jude"}, {2.0f, 0.0f});
  const auto solo = embedding.EmbedToken("hey");
  for (size_t i = 0; i < weighted.size(); ++i) {
    EXPECT_NEAR(weighted[i], 2.0f * solo[i], 1e-5);
  }
}

TEST(HashTextTest, CustomDimension) {
  const HashTextEmbedding embedding(EmbeddingOptions{.dim = 17});
  EXPECT_EQ(embedding.EmbedToken("x").size(), 17u);
  EXPECT_EQ(embedding.dim(), 17);
}

TEST(HashTextTest, DifferentSeedsDifferentBases) {
  const HashTextEmbedding a(EmbeddingOptions{.seed = 1});
  const HashTextEmbedding b(EmbeddingOptions{.seed = 2});
  EXPECT_LT(CosineSimilarity(a.EmbedToken("hello"), b.EmbedToken("hello")),
            0.9f);
}

TEST(CosineSimilarityTest, KnownValues) {
  EXPECT_FLOAT_EQ(CosineSimilarity({1, 0}, {1, 0}), 1.0f);
  EXPECT_FLOAT_EQ(CosineSimilarity({1, 0}, {0, 1}), 0.0f);
  EXPECT_FLOAT_EQ(CosineSimilarity({1, 0}, {-1, 0}), -1.0f);
  EXPECT_FLOAT_EQ(CosineSimilarity({0, 0}, {1, 0}), 0.0f);
}

// --------------------------------------------------------- string metrics

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0);
}

TEST(LevenshteinSimilarityTest, BoundsAndIdentity) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
}

TEST(JaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {}), 0.0);
}

TEST(OverlapCoefficientTest, UsesSmallerSet) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a"}, {"a", "b", "c"}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"x"}, {"a", "b"}), 0.0);
}

TEST(MongeElkanTest, ForgivesTypos) {
  const double sim =
      MongeElkanSimilarity({"beatles", "abbey"}, {"beatels", "abbey"});
  EXPECT_GT(sim, 0.8);
}

TEST(TrigramTest, SharedSubstringsScoreHigher) {
  EXPECT_GT(TrigramSimilarity("monitor", "monitors"),
            TrigramSimilarity("monitor", "keyboard"));
  EXPECT_DOUBLE_EQ(TrigramSimilarity("", ""), 1.0);
}

TEST(ExactMatchTest, NeutralForDoubleEmpty) {
  EXPECT_DOUBLE_EQ(ExactMatchScore("", ""), 0.5);
  EXPECT_DOUBLE_EQ(ExactMatchScore("a", "a"), 1.0);
  EXPECT_DOUBLE_EQ(ExactMatchScore("a", "b"), 0.0);
}

// Property sweep: similarity symmetry and [0,1] bounds.
class MetricSymmetrySweep
    : public ::testing::TestWithParam<std::pair<std::string, std::string>> {};

TEST_P(MetricSymmetrySweep, SymmetricAndBounded) {
  const auto& [a, b] = GetParam();
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity(a, b), LevenshteinSimilarity(b, a));
  EXPECT_DOUBLE_EQ(TrigramSimilarity(a, b), TrigramSimilarity(b, a));
  for (const double v : {LevenshteinSimilarity(a, b),
                         TrigramSimilarity(a, b)}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, MetricSymmetrySweep,
    ::testing::Values(std::make_pair("", ""), std::make_pair("a", ""),
                      std::make_pair("hello", "hallo"),
                      std::make_pair("paul mccartney", "p. m."),
                      std::make_pair("xx", "yyyyyyyy")));

// ---------------------------------------------------------------- tfidf

TEST(TfIdfTest, RareTokensGetHigherIdf) {
  TfIdfModel model;
  model.Fit({{"the", "cat"}, {"the", "dog"}, {"the", "rare"}});
  EXPECT_GT(model.Idf("rare"), model.Idf("the"));
  EXPECT_GT(model.Idf("unseen"), model.Idf("rare"));
}

TEST(TfIdfTest, SummarizeKeepsInformativeTokensInOrder) {
  TfIdfModel model;
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 50; ++i) {
    corpus.push_back({"buy", "now", "monitor"});
  }
  corpus.push_back({"acme", "zx42"});
  model.Fit(corpus);
  const std::vector<std::string> kept = model.Summarize(
      {"buy", "acme", "now", "zx42", "monitor"}, 2);
  EXPECT_EQ(kept, (std::vector<std::string>{"acme", "zx42"}));
}

TEST(TfIdfTest, SummarizeNoOpWhenShort) {
  TfIdfModel model;
  model.Fit({{"a"}});
  const std::vector<std::string> tokens = {"a", "b"};
  EXPECT_EQ(model.Summarize(tokens, 10), tokens);
}

TEST(TfIdfTest, WeightsMatchTermCountTimesIdf) {
  TfIdfModel model;
  model.Fit({{"x"}, {"y"}});
  const auto weights = model.Weights({"x", "x", "z"});
  ASSERT_EQ(weights.size(), 3u);
  EXPECT_FLOAT_EQ(weights[0], weights[1]);
  EXPECT_NEAR(weights[0], 2.0 * model.Idf("x"), 1e-5);
}

}  // namespace
}  // namespace adamel::text
