// Unit tests for nn::Tensor: factories, access, and the autograd engine on
// small hand-checkable graphs.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace adamel::nn {
namespace {

TEST(TensorTest, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, ZerosShapeAndValues) {
  const Tensor t = Tensor::Zeros(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  for (float v : t.data()) {
    EXPECT_EQ(v, 0.0f);
  }
}

TEST(TensorTest, FullAndScalar) {
  const Tensor t = Tensor::Full(2, 2, 1.5f);
  EXPECT_EQ(t.At(1, 1), 1.5f);
  const Tensor s = Tensor::Scalar(-3.0f);
  EXPECT_EQ(s.rows(), 1);
  EXPECT_EQ(s.cols(), 1);
  EXPECT_EQ(s.At(0, 0), -3.0f);
}

TEST(TensorTest, FromVectorRowMajor) {
  const Tensor t = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.At(0, 2), 3.0f);
  EXPECT_EQ(t.At(1, 0), 4.0f);
}

TEST(TensorTest, SetMutates) {
  Tensor t = Tensor::Zeros(2, 2);
  t.Set(0, 1, 7.0f);
  EXPECT_EQ(t.At(0, 1), 7.0f);
}

TEST(TensorTest, CopyAliasesStorage) {
  Tensor a = Tensor::Zeros(1, 1);
  Tensor b = a;  // shared handle
  b.Set(0, 0, 5.0f);
  EXPECT_EQ(a.At(0, 0), 5.0f);
}

TEST(TensorTest, DetachCopiesValuesDropsGraph) {
  Tensor a = Tensor::Full(1, 2, 2.0f, /*requires_grad=*/true);
  Tensor b = MulScalar(a, 3.0f);
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.At(0, 1), 6.0f);
  d.Set(0, 0, 99.0f);
  EXPECT_EQ(b.At(0, 0), 6.0f);  // detach copied, not aliased
}

TEST(TensorTest, RandomNormalIsDeterministicPerSeed) {
  Rng rng1(5);
  Rng rng2(5);
  const Tensor a = Tensor::RandomNormal(3, 3, 1.0f, &rng1);
  const Tensor b = Tensor::RandomNormal(3, 3, 1.0f, &rng2);
  EXPECT_EQ(a.data(), b.data());
}

TEST(TensorTest, XavierUniformWithinBound) {
  Rng rng(6);
  const int fan_in = 30;
  const int fan_out = 50;
  const Tensor w = Tensor::XavierUniform(fan_in, fan_out, &rng);
  const double bound = std::sqrt(6.0 / (fan_in + fan_out));
  for (float v : w.data()) {
    EXPECT_LE(std::fabs(v), bound);
  }
  EXPECT_TRUE(w.requires_grad());
}

TEST(AutogradTest, AddBackwardIsOnes) {
  Tensor a = Tensor::Full(1, 3, 1.0f, true);
  Tensor b = Tensor::Full(1, 3, 2.0f, true);
  Tensor loss = Sum(Add(a, b));
  loss.Backward();
  for (float g : a.grad()) {
    EXPECT_FLOAT_EQ(g, 1.0f);
  }
  for (float g : b.grad()) {
    EXPECT_FLOAT_EQ(g, 1.0f);
  }
}

TEST(AutogradTest, MulBackwardIsOtherOperand) {
  Tensor a = Tensor::FromVector(1, 2, {2.0f, 3.0f}, true);
  Tensor b = Tensor::FromVector(1, 2, {5.0f, 7.0f}, true);
  Tensor loss = Sum(Mul(a, b));
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 5.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 7.0f);
  EXPECT_FLOAT_EQ(b.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(b.grad()[1], 3.0f);
}

TEST(AutogradTest, ChainRuleThroughTwoOps) {
  // loss = sum((2x)^2) -> d/dx = 8x
  Tensor x = Tensor::FromVector(1, 2, {1.0f, -2.0f}, true);
  Tensor loss = Sum(Square(MulScalar(x, 2.0f)));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], -16.0f);
}

TEST(AutogradTest, GradAccumulatesWhenReused) {
  // loss = sum(x + x) -> d/dx = 2 (x used twice in the graph).
  Tensor x = Tensor::Full(1, 2, 3.0f, true);
  Tensor loss = Sum(Add(x, x));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // y = x*x (via two branches b1 = 2x, b2 = 3x, loss = sum(b1*b2) = 6x^2)
  Tensor x = Tensor::Full(1, 1, 2.0f, true);
  Tensor loss = Sum(Mul(MulScalar(x, 2.0f), MulScalar(x, 3.0f)));
  loss.Backward();
  EXPECT_FLOAT_EQ(loss.At(0, 0), 24.0f);
  EXPECT_FLOAT_EQ(x.grad()[0], 24.0f);  // d(6x^2)/dx = 12x = 24
}

TEST(AutogradTest, NoGradForFrozenLeaves) {
  Tensor a = Tensor::Full(1, 2, 1.0f, /*requires_grad=*/false);
  Tensor b = Tensor::Full(1, 2, 1.0f, /*requires_grad=*/true);
  Tensor loss = Sum(Mul(a, b));
  loss.Backward();
  // Frozen leaf keeps a zero gradient buffer.
  for (float g : a.grad()) {
    EXPECT_EQ(g, 0.0f);
  }
  EXPECT_FLOAT_EQ(b.grad()[0], 1.0f);
}

TEST(AutogradTest, ConstantGraphHasNoBackwardEdges) {
  Tensor a = Tensor::Full(2, 2, 1.0f);
  Tensor b = Relu(Add(a, a));
  EXPECT_FALSE(b.requires_grad());
  EXPECT_TRUE(b.impl()->parents.empty());
}

TEST(AutogradTest, ZeroGradResets) {
  Tensor x = Tensor::Full(1, 1, 2.0f, true);
  Tensor loss = Sum(Square(x));
  loss.Backward();
  EXPECT_NE(x.grad()[0], 0.0f);
  x.ZeroGrad();
  EXPECT_EQ(x.grad()[0], 0.0f);
}

TEST(TensorTest, DebugStringMentionsShape) {
  const Tensor t = Tensor::Zeros(2, 5);
  EXPECT_NE(t.DebugString().find("2x5"), std::string::npos);
}

}  // namespace
}  // namespace adamel::nn
