// End-to-end checkpoint tests: model/extractor/optimizer/RNG round trips,
// crash-safe training resume (bitwise identical to uninterrupted runs), and
// rejection of corrupt, truncated, or mismatched checkpoint files.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/deepmatcher.h"
#include "baselines/tler.h"
#include "common/rng.h"
#include "core/features.h"
#include "core/model.h"
#include "core/trainer.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "nn/serialize.h"

namespace adamel::core {
namespace {

data::Record MakeRecord(std::vector<std::string> values) {
  data::Record record;
  record.id = "r";
  record.source = "s";
  record.values = std::move(values);
  return record;
}

data::LabeledPair MakePair(std::vector<std::string> left,
                           std::vector<std::string> right, int label) {
  data::LabeledPair pair;
  pair.left = MakeRecord(std::move(left));
  pair.right = MakeRecord(std::move(right));
  pair.label = label;
  return pair;
}

// Pairs match iff the "key" attribute shares its token.
data::PairDataset ToyDataset(int n, uint64_t seed) {
  Rng rng(seed);
  data::PairDataset dataset(data::Schema({"key", "noise"}));
  for (int i = 0; i < n; ++i) {
    const bool match = rng.Bernoulli(0.5);
    const std::string key = "key" + std::to_string(rng.UniformInt(50));
    const std::string other =
        match ? key : "key" + std::to_string(rng.UniformInt(50) + 50);
    dataset.Add(MakePair({key, "blah" + std::to_string(rng.UniformInt(9))},
                         {other, "blub" + std::to_string(rng.UniformInt(9))},
                         match ? data::kMatch : data::kNonMatch));
  }
  return dataset;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Flips one byte of the file at `path`, well inside the payload region.
void CorruptFile(const std::string& path) {
  StatusOr<std::string> contents = nn::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  std::string bytes = std::move(contents).value();
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x40;
  ASSERT_TRUE(nn::AtomicWriteFile(path, bytes).ok());
}

// -------------------------------------------------------------- extractor

TEST(FeatureExtractorCheckpointTest, RoundTripFeaturizesIdentically) {
  text::TokenizerOptions tokenizer;
  tokenizer.lowercase = false;
  tokenizer.crop_size = 7;
  const FeatureExtractor original(data::Schema({"name", "addr"}),
                                  FeatureMode::kSharedOnly, 24, tokenizer);
  nn::BlobWriter writer;
  original.Save(&writer);
  nn::BlobReader reader(writer.buffer());
  StatusOr<std::shared_ptr<FeatureExtractor>> restored =
      FeatureExtractor::Load(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(reader.AtEnd());

  EXPECT_EQ((*restored)->feature_names(), original.feature_names());
  EXPECT_EQ((*restored)->embed_dim(), original.embed_dim());
  EXPECT_EQ((*restored)->mode(), original.mode());
  const data::LabeledPair pair =
      MakePair({"Alice B", "12 Main St"}, {"alice b", "12 main st"},
               data::kMatch);
  EXPECT_EQ((*restored)->FeaturizePair(pair), original.FeaturizePair(pair));
}

TEST(FeatureExtractorCheckpointTest, RejectsTruncatedBlob) {
  const FeatureExtractor original(data::Schema({"a"}),
                                  FeatureMode::kSharedAndUnique, 8);
  nn::BlobWriter writer;
  original.Save(&writer);
  nn::BlobReader reader(
      std::string_view(writer.buffer()).substr(0, writer.buffer().size() / 2));
  EXPECT_FALSE(FeatureExtractor::Load(&reader).ok());
}

// ------------------------------------------------------------------ model

TEST(AdamelModelCheckpointTest, RoundTripIsBitwise) {
  AdamelConfig config;
  Rng rng(11);
  const AdamelModel original(4, config, &rng);
  nn::BlobWriter writer;
  original.Save(&writer);

  nn::BlobReader reader(writer.buffer());
  StatusOr<std::shared_ptr<AdamelModel>> restored = AdamelModel::Load(&reader);
  ASSERT_TRUE(restored.ok());

  const auto original_params = original.NamedParameters();
  const auto restored_params = (*restored)->NamedParameters();
  ASSERT_EQ(original_params.size(), restored_params.size());
  for (size_t i = 0; i < original_params.size(); ++i) {
    EXPECT_EQ(restored_params[i].first, original_params[i].first);
    EXPECT_EQ(restored_params[i].second.data(), original_params[i].second.data())
        << "parameter " << original_params[i].first;
  }
}

TEST(AdamelModelCheckpointTest, LoadRejectsGarbage) {
  nn::BlobReader reader("not a model blob");
  EXPECT_FALSE(AdamelModel::Load(&reader).ok());
}

// -------------------------------------------------------------- optimizer

TEST(OptimizerCheckpointTest, AdamResumesBitwise) {
  // Two optimizers on identical problems: one runs 10 steps straight, the
  // other is snapshotted at step 5 and restored into a fresh Adam. The
  // final weights must match bitwise (moments AND step count carry over).
  Rng rng(7);
  const nn::Tensor x = nn::Tensor::RandomNormal(16, 3, 1.0f, &rng);
  auto make_param = [] {
    return nn::Tensor::Full(3, 1, 0.5f, /*requires_grad=*/true);
  };
  auto step = [&x](const nn::Tensor& w, nn::Adam* adam) {
    adam->ZeroGrad();
    nn::Tensor loss = nn::Mean(nn::Square(nn::MatMul(x, w)));
    loss.Backward();
    adam->Step();
  };

  const nn::Tensor w_straight = make_param();
  nn::Adam adam_straight({w_straight}, 0.05f);
  for (int i = 0; i < 10; ++i) {
    step(w_straight, &adam_straight);
  }

  const nn::Tensor w_first = make_param();
  nn::Adam adam_first({w_first}, 0.05f);
  for (int i = 0; i < 5; ++i) {
    step(w_first, &adam_first);
  }
  nn::BlobWriter state;
  adam_first.SaveState(&state);
  nn::BlobWriter params;
  nn::WriteTensor(w_first, &params);

  const nn::Tensor w_resumed = make_param();
  nn::BlobReader params_reader(params.buffer());
  ASSERT_TRUE(nn::ReadTensorInto(&params_reader, w_resumed).ok());
  nn::Adam adam_resumed({w_resumed}, 0.05f);
  nn::BlobReader state_reader(state.buffer());
  ASSERT_TRUE(adam_resumed.LoadState(&state_reader).ok());
  for (int i = 0; i < 5; ++i) {
    step(w_resumed, &adam_resumed);
  }

  EXPECT_EQ(w_resumed.data(), w_straight.data());
}

TEST(OptimizerCheckpointTest, SgdStateRoundTrips) {
  const nn::Tensor w = nn::Tensor::Full(2, 2, 1.0f, /*requires_grad=*/true);
  nn::Sgd sgd({w}, 0.1f, /*momentum=*/0.9f);
  nn::Tensor loss = nn::Sum(nn::Square(w));
  loss.Backward();
  sgd.Step();

  nn::BlobWriter writer;
  sgd.SaveState(&writer);
  const nn::Tensor w2 = nn::Tensor::Full(2, 2, 1.0f, /*requires_grad=*/true);
  nn::Sgd restored({w2}, 0.1f, 0.9f);
  nn::BlobReader reader(writer.buffer());
  EXPECT_TRUE(restored.LoadState(&reader).ok());
}

TEST(OptimizerCheckpointTest, LoadRejectsWrongParameterCount) {
  const nn::Tensor w = nn::Tensor::Full(2, 2, 1.0f, /*requires_grad=*/true);
  nn::Adam adam({w}, 0.05f);
  nn::BlobWriter writer;
  adam.SaveState(&writer);

  const nn::Tensor a = nn::Tensor::Full(2, 2, 1.0f, /*requires_grad=*/true);
  const nn::Tensor b = nn::Tensor::Full(1, 2, 1.0f, /*requires_grad=*/true);
  nn::Adam other({a, b}, 0.05f);
  nn::BlobReader reader(writer.buffer());
  EXPECT_FALSE(other.LoadState(&reader).ok());
}

// ------------------------------------------------------------------- rng

TEST(RngCheckpointTest, StateRoundTripContinuesIdentically) {
  Rng rng(123);
  // Exercise both the integer path and the Box-Muller cache.
  (void)rng.Normal();
  (void)rng.UniformInt(1000);
  const RngState snapshot = rng.GetState();

  std::vector<double> expected;
  for (int i = 0; i < 20; ++i) {
    expected.push_back(rng.Normal());
    expected.push_back(static_cast<double>(rng.UniformInt(1 << 20)));
  }

  Rng other(999);  // different seed, then overwritten by the snapshot
  other.SetState(snapshot);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(other.Normal(), expected[2 * i]);
    EXPECT_EQ(static_cast<double>(other.UniformInt(1 << 20)),
              expected[2 * i + 1]);
  }
}

// ----------------------------------------------------------- trained model

TEST(TrainedAdamelCheckpointTest, FileRoundTripPredictsBitwise) {
  const data::PairDataset train = ToyDataset(80, 31);
  const data::PairDataset test = ToyDataset(40, 32);
  AdamelConfig config;
  config.epochs = 4;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  const TrainedAdamel trained = trainer.Fit(AdamelVariant::kBase, inputs);

  const std::string path = TempPath("trained_roundtrip.ckpt");
  ASSERT_TRUE(trained.SaveToFile(path).ok());
  StatusOr<std::shared_ptr<TrainedAdamel>> loaded =
      TrainedAdamel::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ((*loaded)->ScorePairs(test), trained.ScorePairs(test));
  EXPECT_EQ((*loaded)->ParameterCount(), trained.ParameterCount());
}

TEST(TrainedAdamelCheckpointTest, QuantizedTwinRoundTripsBitwise) {
  const data::PairDataset train = ToyDataset(80, 36);
  const data::PairDataset test = ToyDataset(40, 37);
  AdamelConfig config;
  config.epochs = 2;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  TrainedAdamel trained = trainer.Fit(AdamelVariant::kBase, inputs);

  // Before calibration the quantized path declines.
  EXPECT_FALSE(trained.HasQuantized());
  EXPECT_EQ(trained.ScorePairsQuantized(test).status().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(trained.EnableQuantizedScoring(data::PairSpan(train)).ok());
  ASSERT_TRUE(trained.HasQuantized());
  const std::vector<float> before = trained.ScorePairsQuantized(test).value();

  // The quantized twin rides along in the checkpoint: a reload needs no
  // re-calibration and scores bitwise identically (int8 weights and scales
  // are exact to serialize).
  const std::string path = TempPath("trained_quantized.ckpt");
  ASSERT_TRUE(trained.SaveToFile(path).ok());
  StatusOr<std::shared_ptr<TrainedAdamel>> loaded =
      TrainedAdamel::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE((*loaded)->HasQuantized());
  EXPECT_EQ((*loaded)->ScorePairsQuantized(test).value(), before);
  // The fp32 path is untouched by the optional section.
  EXPECT_EQ((*loaded)->ScorePairs(test), trained.ScorePairs(test));
}

TEST(TrainedAdamelCheckpointTest, CheckpointWithoutQuantizedSectionLoads) {
  const data::PairDataset train = ToyDataset(60, 38);
  AdamelConfig config;
  config.epochs = 1;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  const TrainedAdamel trained = trainer.Fit(AdamelVariant::kBase, inputs);
  const std::string path = TempPath("trained_no_quantized.ckpt");
  ASSERT_TRUE(trained.SaveToFile(path).ok());
  StatusOr<std::shared_ptr<TrainedAdamel>> loaded =
      TrainedAdamel::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE((*loaded)->HasQuantized());
}

TEST(TrainedAdamelCheckpointTest, RejectsCorruptFile) {
  const data::PairDataset train = ToyDataset(60, 33);
  AdamelConfig config;
  config.epochs = 1;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  const TrainedAdamel trained = trainer.Fit(AdamelVariant::kBase, inputs);

  const std::string path = TempPath("trained_corrupt.ckpt");
  ASSERT_TRUE(trained.SaveToFile(path).ok());
  CorruptFile(path);
  const StatusOr<std::shared_ptr<TrainedAdamel>> loaded =
      TrainedAdamel::LoadFromFile(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(TrainedAdamelCheckpointTest, RejectsTruncatedFile) {
  const data::PairDataset train = ToyDataset(60, 34);
  AdamelConfig config;
  config.epochs = 1;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  const TrainedAdamel trained = trainer.Fit(AdamelVariant::kBase, inputs);

  const std::string path = TempPath("trained_truncated.ckpt");
  ASSERT_TRUE(trained.SaveToFile(path).ok());
  StatusOr<std::string> contents = nn::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(nn::AtomicWriteFile(
                  path, contents->substr(0, contents->size() / 3))
                  .ok());
  EXPECT_FALSE(TrainedAdamel::LoadFromFile(path).ok());
}

TEST(TrainedAdamelCheckpointTest, RejectsUnsupportedVersion) {
  const data::PairDataset train = ToyDataset(60, 35);
  AdamelConfig config;
  config.epochs = 1;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  const TrainedAdamel trained = trainer.Fit(AdamelVariant::kBase, inputs);

  const std::string path = TempPath("trained_version.ckpt");
  ASSERT_TRUE(trained.SaveToFile(path).ok());
  StatusOr<std::string> contents = nn::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  std::string bytes = std::move(contents).value();
  bytes[4] = static_cast<char>(nn::kCheckpointVersion + 1);
  ASSERT_TRUE(nn::AtomicWriteFile(path, bytes).ok());
  const StatusOr<std::shared_ptr<TrainedAdamel>> loaded =
      TrainedAdamel::LoadFromFile(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TrainedAdamelCheckpointTest, MissingFileIsIoError) {
  EXPECT_EQ(TrainedAdamel::LoadFromFile("/nonexistent/model.ckpt")
                .status()
                .code(),
            StatusCode::kIoError);
}

// ------------------------------------------------------------------ resume

TEST(FitWithCheckpointTest, ResumeEqualsUninterruptedRun) {
  // The strongest guarantee the checkpoint subsystem makes: interrupting
  // training at an epoch boundary and resuming from the file continues the
  // exact same trajectory — same weights, Adam moments, RNG stream, and
  // shuffled permutation — so predictions AND history match bitwise. kHyb
  // exercises every stochastic code path (shuffle, target sampling, support
  // sampling, centroid sampling).
  const data::PairDataset train = ToyDataset(100, 41);
  const data::PairDataset target = ToyDataset(60, 42).WithoutLabels();
  const data::PairDataset support = ToyDataset(20, 43);
  const data::PairDataset test = ToyDataset(40, 44);
  AdamelConfig config;
  config.epochs = 6;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;
  inputs.target_unlabeled = &target;
  inputs.support = &support;

  std::vector<EpochStats> uninterrupted_history;
  const TrainedAdamel uninterrupted =
      trainer.Fit(AdamelVariant::kHyb, inputs, &uninterrupted_history);

  const std::string path = TempPath("resume_test.ckpt");
  std::remove(path.c_str());
  FitCheckpointOptions options;
  options.path = path;
  options.max_epochs_this_run = 2;  // simulate a crash after 2 epochs
  StatusOr<std::shared_ptr<TrainedAdamel>> partial =
      trainer.FitWithCheckpoint(AdamelVariant::kHyb, inputs, options);
  ASSERT_TRUE(partial.ok());

  options.max_epochs_this_run = 0;  // resume to completion
  std::vector<EpochStats> resumed_history;
  StatusOr<std::shared_ptr<TrainedAdamel>> resumed = trainer.FitWithCheckpoint(
      AdamelVariant::kHyb, inputs, options, &resumed_history);
  ASSERT_TRUE(resumed.ok());

  EXPECT_EQ((*resumed)->ScorePairs(test), uninterrupted.ScorePairs(test));
  ASSERT_EQ(resumed_history.size(), uninterrupted_history.size());
  for (size_t e = 0; e < resumed_history.size(); ++e) {
    EXPECT_EQ(resumed_history[e].base_loss, uninterrupted_history[e].base_loss)
        << "epoch " << e;
    EXPECT_EQ(resumed_history[e].target_loss,
              uninterrupted_history[e].target_loss);
    EXPECT_EQ(resumed_history[e].support_loss,
              uninterrupted_history[e].support_loss);
  }
}

TEST(FitWithCheckpointTest, CompletedCheckpointShortCircuits) {
  // Resuming a checkpoint that already holds all epochs runs zero further
  // epochs and reproduces the same model.
  const data::PairDataset train = ToyDataset(60, 45);
  const data::PairDataset test = ToyDataset(30, 46);
  AdamelConfig config;
  config.epochs = 3;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;

  const std::string path = TempPath("completed_test.ckpt");
  std::remove(path.c_str());
  FitCheckpointOptions options;
  options.path = path;
  StatusOr<std::shared_ptr<TrainedAdamel>> first =
      trainer.FitWithCheckpoint(AdamelVariant::kBase, inputs, options);
  ASSERT_TRUE(first.ok());
  StatusOr<std::shared_ptr<TrainedAdamel>> second =
      trainer.FitWithCheckpoint(AdamelVariant::kBase, inputs, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->ScorePairs(test), (*first)->ScorePairs(test));
}

TEST(FitWithCheckpointTest, RejectsVariantMismatch) {
  const data::PairDataset train = ToyDataset(60, 47);
  AdamelConfig config;
  config.epochs = 2;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;

  const std::string path = TempPath("variant_mismatch.ckpt");
  std::remove(path.c_str());
  FitCheckpointOptions options;
  options.path = path;
  ASSERT_TRUE(
      trainer.FitWithCheckpoint(AdamelVariant::kBase, inputs, options).ok());

  const data::PairDataset target = ToyDataset(30, 48).WithoutLabels();
  inputs.target_unlabeled = &target;
  const StatusOr<std::shared_ptr<TrainedAdamel>> mismatched =
      trainer.FitWithCheckpoint(AdamelVariant::kZero, inputs, options);
  EXPECT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FitWithCheckpointTest, RejectsConfigMismatch) {
  const data::PairDataset train = ToyDataset(60, 49);
  AdamelConfig config;
  config.epochs = 4;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;

  const std::string path = TempPath("config_mismatch.ckpt");
  std::remove(path.c_str());
  FitCheckpointOptions options;
  options.path = path;
  options.max_epochs_this_run = 1;
  ASSERT_TRUE(
      trainer.FitWithCheckpoint(AdamelVariant::kBase, inputs, options).ok());

  AdamelConfig other = config;
  other.learning_rate *= 2.0f;
  const AdamelTrainer other_trainer(other);
  const StatusOr<std::shared_ptr<TrainedAdamel>> mismatched =
      other_trainer.FitWithCheckpoint(AdamelVariant::kBase, inputs, options);
  EXPECT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FitWithCheckpointTest, RejectsCorruptTrainState) {
  const data::PairDataset train = ToyDataset(60, 50);
  AdamelConfig config;
  config.epochs = 4;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;

  const std::string path = TempPath("corrupt_train_state.ckpt");
  std::remove(path.c_str());
  FitCheckpointOptions options;
  options.path = path;
  options.max_epochs_this_run = 1;
  ASSERT_TRUE(
      trainer.FitWithCheckpoint(AdamelVariant::kBase, inputs, options).ok());
  CorruptFile(path);
  options.max_epochs_this_run = 0;
  EXPECT_FALSE(
      trainer.FitWithCheckpoint(AdamelVariant::kBase, inputs, options).ok());
}

TEST(FitWithCheckpointTest, ValidatesOptions) {
  const data::PairDataset train = ToyDataset(20, 51);
  const AdamelTrainer trainer;
  MelInputs inputs;
  inputs.source_train = &train;
  FitCheckpointOptions options;  // empty path
  EXPECT_EQ(trainer.FitWithCheckpoint(AdamelVariant::kBase, inputs, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  options.path = TempPath("bad_save_every.ckpt");
  options.save_every = 0;
  EXPECT_FALSE(
      trainer.FitWithCheckpoint(AdamelVariant::kBase, inputs, options).ok());
}

TEST(FitWithCheckpointTest, TrainStateFileIsNotATrainedModel) {
  const data::PairDataset train = ToyDataset(40, 52);
  AdamelConfig config;
  config.epochs = 1;
  const AdamelTrainer trainer(config);
  MelInputs inputs;
  inputs.source_train = &train;

  const std::string path = TempPath("kind_mismatch.ckpt");
  std::remove(path.c_str());
  FitCheckpointOptions options;
  options.path = path;
  ASSERT_TRUE(
      trainer.FitWithCheckpoint(AdamelVariant::kBase, inputs, options).ok());
  const StatusOr<std::shared_ptr<TrainedAdamel>> wrong_kind =
      TrainedAdamel::LoadFromFile(path);
  EXPECT_FALSE(wrong_kind.ok());
  EXPECT_EQ(wrong_kind.status().code(), StatusCode::kFailedPrecondition);
}

// --------------------------------------------------- EntityLinkageModel API

TEST(LinkageCheckpointTest, AdamelLinkageRoundTrips) {
  const data::PairDataset train = ToyDataset(60, 53);
  const data::PairDataset test = ToyDataset(30, 54);
  AdamelConfig config;
  config.epochs = 2;
  MelInputs inputs;
  inputs.source_train = &train;

  AdamelLinkage original(AdamelVariant::kBase, config);
  ASSERT_TRUE(original.Fit(inputs).ok());
  const std::string path = TempPath("linkage_roundtrip.ckpt");
  ASSERT_TRUE(original.SaveCheckpoint(path).ok());

  AdamelLinkage restored(AdamelVariant::kBase, config);
  ASSERT_TRUE(restored.LoadCheckpoint(path).ok());
  EXPECT_EQ(restored.ScorePairs(test).value(), original.ScorePairs(test).value());
}

TEST(LinkageCheckpointTest, SaveBeforeFitFails) {
  const AdamelLinkage unfitted(AdamelVariant::kBase);
  EXPECT_EQ(unfitted.SaveCheckpoint(TempPath("nope.ckpt")).code(),
            StatusCode::kFailedPrecondition);
}

TEST(LinkageCheckpointTest, TlerRoundTrips) {
  const data::PairDataset train = ToyDataset(60, 55);
  const data::PairDataset test = ToyDataset(30, 56);
  MelInputs inputs;
  inputs.source_train = &train;

  baselines::TlerModel original;
  ASSERT_TRUE(original.Fit(inputs).ok());
  const std::string path = TempPath("tler_roundtrip.ckpt");
  ASSERT_TRUE(original.SaveCheckpoint(path).ok());

  baselines::TlerModel restored;
  ASSERT_TRUE(restored.LoadCheckpoint(path).ok());
  EXPECT_EQ(restored.ScorePairs(test).value(), original.ScorePairs(test).value());
  EXPECT_EQ(restored.ParameterCount(), original.ParameterCount());
}

TEST(LinkageCheckpointTest, TlerRejectsAdamelFile) {
  const data::PairDataset train = ToyDataset(40, 57);
  AdamelConfig config;
  config.epochs = 1;
  MelInputs inputs;
  inputs.source_train = &train;
  AdamelLinkage adamel(AdamelVariant::kBase, config);
  ASSERT_TRUE(adamel.Fit(inputs).ok());
  const std::string path = TempPath("adamel_for_tler.ckpt");
  ASSERT_TRUE(adamel.SaveCheckpoint(path).ok());

  baselines::TlerModel tler;
  const Status loaded = tler.LoadCheckpoint(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kFailedPrecondition);
}

TEST(LinkageCheckpointTest, UnsupportedModelDeclinesPolitely) {
  baselines::DeepMatcherModel model;
  EXPECT_EQ(model.SaveCheckpoint(TempPath("dm.ckpt")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(model.LoadCheckpoint(TempPath("dm.ckpt")).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace adamel::core
