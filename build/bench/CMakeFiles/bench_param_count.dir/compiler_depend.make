# Empty compiler generated dependencies file for bench_param_count.
# This may be replaced when dependencies are built.
