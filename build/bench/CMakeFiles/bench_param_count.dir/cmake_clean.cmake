file(REMOVE_RECURSE
  "CMakeFiles/bench_param_count.dir/bench_param_count.cpp.o"
  "CMakeFiles/bench_param_count.dir/bench_param_count.cpp.o.d"
  "bench_param_count"
  "bench_param_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
