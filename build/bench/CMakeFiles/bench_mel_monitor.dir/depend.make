# Empty dependencies file for bench_mel_monitor.
# This may be replaced when dependencies are built.
