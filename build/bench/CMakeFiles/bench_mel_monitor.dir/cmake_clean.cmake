file(REMOVE_RECURSE
  "CMakeFiles/bench_mel_monitor.dir/bench_mel_monitor.cpp.o"
  "CMakeFiles/bench_mel_monitor.dir/bench_mel_monitor.cpp.o.d"
  "bench_mel_monitor"
  "bench_mel_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mel_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
