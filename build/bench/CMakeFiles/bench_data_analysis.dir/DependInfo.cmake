
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_data_analysis.cpp" "bench/CMakeFiles/bench_data_analysis.dir/bench_data_analysis.cpp.o" "gcc" "bench/CMakeFiles/bench_data_analysis.dir/bench_data_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/adamel_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/adamel_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adamel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adamel_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/adamel_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/adamel_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/adamel_text.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/adamel_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adamel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
