file(REMOVE_RECURSE
  "CMakeFiles/bench_data_analysis.dir/bench_data_analysis.cpp.o"
  "CMakeFiles/bench_data_analysis.dir/bench_data_analysis.cpp.o.d"
  "bench_data_analysis"
  "bench_data_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
