# Empty compiler generated dependencies file for bench_data_analysis.
# This may be replaced when dependencies are built.
