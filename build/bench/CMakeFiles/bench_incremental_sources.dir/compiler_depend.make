# Empty compiler generated dependencies file for bench_incremental_sources.
# This may be replaced when dependencies are built.
