file(REMOVE_RECURSE
  "CMakeFiles/bench_incremental_sources.dir/bench_incremental_sources.cpp.o"
  "CMakeFiles/bench_incremental_sources.dir/bench_incremental_sources.cpp.o.d"
  "bench_incremental_sources"
  "bench_incremental_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incremental_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
