# Empty compiler generated dependencies file for bench_attention_analysis.
# This may be replaced when dependencies are built.
