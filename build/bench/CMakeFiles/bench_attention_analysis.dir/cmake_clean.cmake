file(REMOVE_RECURSE
  "CMakeFiles/bench_attention_analysis.dir/bench_attention_analysis.cpp.o"
  "CMakeFiles/bench_attention_analysis.dir/bench_attention_analysis.cpp.o.d"
  "bench_attention_analysis"
  "bench_attention_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attention_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
