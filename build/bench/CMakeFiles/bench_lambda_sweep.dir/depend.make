# Empty dependencies file for bench_lambda_sweep.
# This may be replaced when dependencies are built.
