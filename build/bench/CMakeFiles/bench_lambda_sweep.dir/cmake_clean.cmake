file(REMOVE_RECURSE
  "CMakeFiles/bench_lambda_sweep.dir/bench_lambda_sweep.cpp.o"
  "CMakeFiles/bench_lambda_sweep.dir/bench_lambda_sweep.cpp.o.d"
  "bench_lambda_sweep"
  "bench_lambda_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lambda_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
