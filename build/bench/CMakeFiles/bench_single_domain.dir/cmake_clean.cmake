file(REMOVE_RECURSE
  "CMakeFiles/bench_single_domain.dir/bench_single_domain.cpp.o"
  "CMakeFiles/bench_single_domain.dir/bench_single_domain.cpp.o.d"
  "bench_single_domain"
  "bench_single_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_single_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
