# Empty compiler generated dependencies file for bench_single_domain.
# This may be replaced when dependencies are built.
