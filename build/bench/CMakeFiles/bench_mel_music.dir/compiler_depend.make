# Empty compiler generated dependencies file for bench_mel_music.
# This may be replaced when dependencies are built.
