file(REMOVE_RECURSE
  "CMakeFiles/bench_mel_music.dir/bench_mel_music.cpp.o"
  "CMakeFiles/bench_mel_music.dir/bench_mel_music.cpp.o.d"
  "bench_mel_music"
  "bench_mel_music.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mel_music.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
