# Empty compiler generated dependencies file for adamel_bench_harness.
# This may be replaced when dependencies are built.
