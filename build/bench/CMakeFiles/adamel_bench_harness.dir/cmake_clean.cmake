file(REMOVE_RECURSE
  "../lib/libadamel_bench_harness.a"
  "../lib/libadamel_bench_harness.pdb"
  "CMakeFiles/adamel_bench_harness.dir/harness.cc.o"
  "CMakeFiles/adamel_bench_harness.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamel_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
