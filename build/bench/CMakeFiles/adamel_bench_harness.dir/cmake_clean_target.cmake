file(REMOVE_RECURSE
  "../lib/libadamel_bench_harness.a"
)
