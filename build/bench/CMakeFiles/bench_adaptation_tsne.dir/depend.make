# Empty dependencies file for bench_adaptation_tsne.
# This may be replaced when dependencies are built.
