file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptation_tsne.dir/bench_adaptation_tsne.cpp.o"
  "CMakeFiles/bench_adaptation_tsne.dir/bench_adaptation_tsne.cpp.o.d"
  "bench_adaptation_tsne"
  "bench_adaptation_tsne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptation_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
