# Empty compiler generated dependencies file for adamel_common.
# This may be replaced when dependencies are built.
