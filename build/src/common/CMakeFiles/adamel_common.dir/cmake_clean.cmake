file(REMOVE_RECURSE
  "CMakeFiles/adamel_common.dir/rng.cc.o"
  "CMakeFiles/adamel_common.dir/rng.cc.o.d"
  "CMakeFiles/adamel_common.dir/status.cc.o"
  "CMakeFiles/adamel_common.dir/status.cc.o.d"
  "CMakeFiles/adamel_common.dir/string_util.cc.o"
  "CMakeFiles/adamel_common.dir/string_util.cc.o.d"
  "libadamel_common.a"
  "libadamel_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamel_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
