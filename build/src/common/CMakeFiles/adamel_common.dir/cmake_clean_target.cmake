file(REMOVE_RECURSE
  "libadamel_common.a"
)
