file(REMOVE_RECURSE
  "libadamel_eval.a"
)
