file(REMOVE_RECURSE
  "CMakeFiles/adamel_eval.dir/metrics.cc.o"
  "CMakeFiles/adamel_eval.dir/metrics.cc.o.d"
  "CMakeFiles/adamel_eval.dir/report.cc.o"
  "CMakeFiles/adamel_eval.dir/report.cc.o.d"
  "CMakeFiles/adamel_eval.dir/tsne.cc.o"
  "CMakeFiles/adamel_eval.dir/tsne.cc.o.d"
  "libadamel_eval.a"
  "libadamel_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamel_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
