# Empty compiler generated dependencies file for adamel_eval.
# This may be replaced when dependencies are built.
