# Empty dependencies file for adamel_text.
# This may be replaced when dependencies are built.
