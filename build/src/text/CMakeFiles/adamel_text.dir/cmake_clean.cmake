file(REMOVE_RECURSE
  "CMakeFiles/adamel_text.dir/embedding.cc.o"
  "CMakeFiles/adamel_text.dir/embedding.cc.o.d"
  "CMakeFiles/adamel_text.dir/string_metrics.cc.o"
  "CMakeFiles/adamel_text.dir/string_metrics.cc.o.d"
  "CMakeFiles/adamel_text.dir/tfidf.cc.o"
  "CMakeFiles/adamel_text.dir/tfidf.cc.o.d"
  "CMakeFiles/adamel_text.dir/tokenizer.cc.o"
  "CMakeFiles/adamel_text.dir/tokenizer.cc.o.d"
  "libadamel_text.a"
  "libadamel_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamel_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
