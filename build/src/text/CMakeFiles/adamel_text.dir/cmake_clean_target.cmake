file(REMOVE_RECURSE
  "libadamel_text.a"
)
