# Empty compiler generated dependencies file for adamel_nn.
# This may be replaced when dependencies are built.
