file(REMOVE_RECURSE
  "CMakeFiles/adamel_nn.dir/grad_check.cc.o"
  "CMakeFiles/adamel_nn.dir/grad_check.cc.o.d"
  "CMakeFiles/adamel_nn.dir/layers.cc.o"
  "CMakeFiles/adamel_nn.dir/layers.cc.o.d"
  "CMakeFiles/adamel_nn.dir/ops.cc.o"
  "CMakeFiles/adamel_nn.dir/ops.cc.o.d"
  "CMakeFiles/adamel_nn.dir/optim.cc.o"
  "CMakeFiles/adamel_nn.dir/optim.cc.o.d"
  "CMakeFiles/adamel_nn.dir/tensor.cc.o"
  "CMakeFiles/adamel_nn.dir/tensor.cc.o.d"
  "libadamel_nn.a"
  "libadamel_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamel_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
