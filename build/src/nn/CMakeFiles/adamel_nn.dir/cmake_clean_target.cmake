file(REMOVE_RECURSE
  "libadamel_nn.a"
)
