file(REMOVE_RECURSE
  "CMakeFiles/adamel_baselines.dir/common.cc.o"
  "CMakeFiles/adamel_baselines.dir/common.cc.o.d"
  "CMakeFiles/adamel_baselines.dir/cordel.cc.o"
  "CMakeFiles/adamel_baselines.dir/cordel.cc.o.d"
  "CMakeFiles/adamel_baselines.dir/deepmatcher.cc.o"
  "CMakeFiles/adamel_baselines.dir/deepmatcher.cc.o.d"
  "CMakeFiles/adamel_baselines.dir/ditto_like.cc.o"
  "CMakeFiles/adamel_baselines.dir/ditto_like.cc.o.d"
  "CMakeFiles/adamel_baselines.dir/entitymatcher.cc.o"
  "CMakeFiles/adamel_baselines.dir/entitymatcher.cc.o.d"
  "CMakeFiles/adamel_baselines.dir/tler.cc.o"
  "CMakeFiles/adamel_baselines.dir/tler.cc.o.d"
  "libadamel_baselines.a"
  "libadamel_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamel_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
