
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/adamel_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/adamel_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/cordel.cc" "src/baselines/CMakeFiles/adamel_baselines.dir/cordel.cc.o" "gcc" "src/baselines/CMakeFiles/adamel_baselines.dir/cordel.cc.o.d"
  "/root/repo/src/baselines/deepmatcher.cc" "src/baselines/CMakeFiles/adamel_baselines.dir/deepmatcher.cc.o" "gcc" "src/baselines/CMakeFiles/adamel_baselines.dir/deepmatcher.cc.o.d"
  "/root/repo/src/baselines/ditto_like.cc" "src/baselines/CMakeFiles/adamel_baselines.dir/ditto_like.cc.o" "gcc" "src/baselines/CMakeFiles/adamel_baselines.dir/ditto_like.cc.o.d"
  "/root/repo/src/baselines/entitymatcher.cc" "src/baselines/CMakeFiles/adamel_baselines.dir/entitymatcher.cc.o" "gcc" "src/baselines/CMakeFiles/adamel_baselines.dir/entitymatcher.cc.o.d"
  "/root/repo/src/baselines/tler.cc" "src/baselines/CMakeFiles/adamel_baselines.dir/tler.cc.o" "gcc" "src/baselines/CMakeFiles/adamel_baselines.dir/tler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adamel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/adamel_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adamel_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/adamel_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adamel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
