# Empty compiler generated dependencies file for adamel_baselines.
# This may be replaced when dependencies are built.
