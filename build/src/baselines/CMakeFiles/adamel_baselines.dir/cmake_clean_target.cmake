file(REMOVE_RECURSE
  "libadamel_baselines.a"
)
