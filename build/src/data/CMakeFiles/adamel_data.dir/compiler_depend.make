# Empty compiler generated dependencies file for adamel_data.
# This may be replaced when dependencies are built.
