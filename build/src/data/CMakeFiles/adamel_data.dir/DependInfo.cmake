
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/blocking.cc" "src/data/CMakeFiles/adamel_data.dir/blocking.cc.o" "gcc" "src/data/CMakeFiles/adamel_data.dir/blocking.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/adamel_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/adamel_data.dir/csv.cc.o.d"
  "/root/repo/src/data/pair_dataset.cc" "src/data/CMakeFiles/adamel_data.dir/pair_dataset.cc.o" "gcc" "src/data/CMakeFiles/adamel_data.dir/pair_dataset.cc.o.d"
  "/root/repo/src/data/record.cc" "src/data/CMakeFiles/adamel_data.dir/record.cc.o" "gcc" "src/data/CMakeFiles/adamel_data.dir/record.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adamel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/adamel_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
