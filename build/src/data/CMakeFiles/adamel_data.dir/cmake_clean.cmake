file(REMOVE_RECURSE
  "CMakeFiles/adamel_data.dir/blocking.cc.o"
  "CMakeFiles/adamel_data.dir/blocking.cc.o.d"
  "CMakeFiles/adamel_data.dir/csv.cc.o"
  "CMakeFiles/adamel_data.dir/csv.cc.o.d"
  "CMakeFiles/adamel_data.dir/pair_dataset.cc.o"
  "CMakeFiles/adamel_data.dir/pair_dataset.cc.o.d"
  "CMakeFiles/adamel_data.dir/record.cc.o"
  "CMakeFiles/adamel_data.dir/record.cc.o.d"
  "libadamel_data.a"
  "libadamel_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamel_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
