file(REMOVE_RECURSE
  "libadamel_data.a"
)
