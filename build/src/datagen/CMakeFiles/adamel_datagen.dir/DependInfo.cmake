
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/benchmark_worlds.cc" "src/datagen/CMakeFiles/adamel_datagen.dir/benchmark_worlds.cc.o" "gcc" "src/datagen/CMakeFiles/adamel_datagen.dir/benchmark_worlds.cc.o.d"
  "/root/repo/src/datagen/monitor_world.cc" "src/datagen/CMakeFiles/adamel_datagen.dir/monitor_world.cc.o" "gcc" "src/datagen/CMakeFiles/adamel_datagen.dir/monitor_world.cc.o.d"
  "/root/repo/src/datagen/music_world.cc" "src/datagen/CMakeFiles/adamel_datagen.dir/music_world.cc.o" "gcc" "src/datagen/CMakeFiles/adamel_datagen.dir/music_world.cc.o.d"
  "/root/repo/src/datagen/name_generator.cc" "src/datagen/CMakeFiles/adamel_datagen.dir/name_generator.cc.o" "gcc" "src/datagen/CMakeFiles/adamel_datagen.dir/name_generator.cc.o.d"
  "/root/repo/src/datagen/world.cc" "src/datagen/CMakeFiles/adamel_datagen.dir/world.cc.o" "gcc" "src/datagen/CMakeFiles/adamel_datagen.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adamel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/adamel_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/adamel_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
