# Empty dependencies file for adamel_datagen.
# This may be replaced when dependencies are built.
