file(REMOVE_RECURSE
  "libadamel_datagen.a"
)
