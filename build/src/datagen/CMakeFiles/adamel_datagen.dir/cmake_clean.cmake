file(REMOVE_RECURSE
  "CMakeFiles/adamel_datagen.dir/benchmark_worlds.cc.o"
  "CMakeFiles/adamel_datagen.dir/benchmark_worlds.cc.o.d"
  "CMakeFiles/adamel_datagen.dir/monitor_world.cc.o"
  "CMakeFiles/adamel_datagen.dir/monitor_world.cc.o.d"
  "CMakeFiles/adamel_datagen.dir/music_world.cc.o"
  "CMakeFiles/adamel_datagen.dir/music_world.cc.o.d"
  "CMakeFiles/adamel_datagen.dir/name_generator.cc.o"
  "CMakeFiles/adamel_datagen.dir/name_generator.cc.o.d"
  "CMakeFiles/adamel_datagen.dir/world.cc.o"
  "CMakeFiles/adamel_datagen.dir/world.cc.o.d"
  "libadamel_datagen.a"
  "libadamel_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamel_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
