file(REMOVE_RECURSE
  "libadamel_core.a"
)
