# Empty dependencies file for adamel_core.
# This may be replaced when dependencies are built.
