file(REMOVE_RECURSE
  "CMakeFiles/adamel_core.dir/features.cc.o"
  "CMakeFiles/adamel_core.dir/features.cc.o.d"
  "CMakeFiles/adamel_core.dir/model.cc.o"
  "CMakeFiles/adamel_core.dir/model.cc.o.d"
  "CMakeFiles/adamel_core.dir/trainer.cc.o"
  "CMakeFiles/adamel_core.dir/trainer.cc.o.d"
  "libadamel_core.a"
  "libadamel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
