
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/features.cc" "src/core/CMakeFiles/adamel_core.dir/features.cc.o" "gcc" "src/core/CMakeFiles/adamel_core.dir/features.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/adamel_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/adamel_core.dir/model.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/adamel_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/adamel_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adamel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/adamel_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adamel_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/adamel_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
