# Empty compiler generated dependencies file for layers_optim_test.
# This may be replaced when dependencies are built.
