file(REMOVE_RECURSE
  "CMakeFiles/layers_optim_test.dir/layers_optim_test.cpp.o"
  "CMakeFiles/layers_optim_test.dir/layers_optim_test.cpp.o.d"
  "layers_optim_test"
  "layers_optim_test.pdb"
  "layers_optim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layers_optim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
