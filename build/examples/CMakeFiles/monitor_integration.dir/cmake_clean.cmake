file(REMOVE_RECURSE
  "CMakeFiles/monitor_integration.dir/monitor_integration.cpp.o"
  "CMakeFiles/monitor_integration.dir/monitor_integration.cpp.o.d"
  "monitor_integration"
  "monitor_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
