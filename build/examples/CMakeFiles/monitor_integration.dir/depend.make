# Empty dependencies file for monitor_integration.
# This may be replaced when dependencies are built.
