file(REMOVE_RECURSE
  "CMakeFiles/music_linkage.dir/music_linkage.cpp.o"
  "CMakeFiles/music_linkage.dir/music_linkage.cpp.o.d"
  "music_linkage"
  "music_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/music_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
