# Empty compiler generated dependencies file for music_linkage.
# This may be replaced when dependencies are built.
