# Empty compiler generated dependencies file for attention_transfer.
# This may be replaced when dependencies are built.
