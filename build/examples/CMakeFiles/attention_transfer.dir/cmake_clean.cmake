file(REMOVE_RECURSE
  "CMakeFiles/attention_transfer.dir/attention_transfer.cpp.o"
  "CMakeFiles/attention_transfer.dir/attention_transfer.cpp.o.d"
  "attention_transfer"
  "attention_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attention_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
