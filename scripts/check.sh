#!/usr/bin/env bash
# Tier-1 gate: configure + build + full ctest, then a ThreadSanitizer build
# that runs the thread-pool and parallel-ops tests, then an AddressSanitizer
# build that runs the serialization/checkpoint tests (the code that parses
# untrusted bytes from disk). Run from the repo root:
#
#   scripts/check.sh
#
# Environment:
#   BUILD_DIR       main build tree (default: build)
#   TSAN_BUILD_DIR  sanitizer build tree (default: build-tsan)
#   ASAN_BUILD_DIR  sanitizer build tree (default: build-asan)
#   JOBS            parallel build jobs (default: nproc)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-${REPO_ROOT}/build-tsan}"
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-${REPO_ROOT}/build-asan}"
JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: configure + build =="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -G Ninja
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== tier-1: ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== tsan: configure + build parallel tests =="
cmake -B "${TSAN_BUILD_DIR}" -S "${REPO_ROOT}" -G Ninja \
  -DADAMEL_SANITIZE=thread
cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}" \
  --target parallel_test ops_test

echo "== tsan: run parallel tests =="
"${TSAN_BUILD_DIR}/tests/parallel_test"
"${TSAN_BUILD_DIR}/tests/ops_test" --gtest_filter='OpsForward.MatMul*:OpsGradient.MatMul*'

echo "== asan: configure + build serialization tests =="
cmake -B "${ASAN_BUILD_DIR}" -S "${REPO_ROOT}" -G Ninja \
  -DADAMEL_SANITIZE=address
cmake --build "${ASAN_BUILD_DIR}" -j "${JOBS}" \
  --target serialize_test checkpoint_test

echo "== asan: run serialization tests =="
"${ASAN_BUILD_DIR}/tests/serialize_test"
"${ASAN_BUILD_DIR}/tests/checkpoint_test"

echo "== all checks passed =="
