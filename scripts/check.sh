#!/usr/bin/env bash
# Tier-1 gate plus the full correctness-tooling matrix. Run from the repo
# root:
#
#   scripts/check.sh
#
# Stages:
#   1. tier-1      warnings-as-errors build + full ctest (includes lint_repo,
#                  which runs adamel_lint over src/, bench/, examples/)
#   2. lint        adamel_lint again, standalone, so a rule violation is
#                  reported even when ctest is filtered down
#   2b. tsa        Clang -Wthread-safety build of the whole tree
#                  (-DADAMEL_THREAD_SAFETY=ON): proves every
#                  ADAMEL_GUARDED_BY / ADAMEL_REQUIRES lock contract in the
#                  concurrent core. Skipped with a notice when no clang++
#                  is on PATH (the analysis is Clang-only; CI always runs
#                  it)
#   3. serve       bench_serving --quick smoke: the serving engine must
#                  coalesce and stay bitwise identical to offline scoring
#                  (the binary exits nonzero if served scores diverge)
#   4. load        bench_load steady smoke: the open-loop load harness must
#                  hold the steady-schedule deadline-miss rate under the
#                  gate threshold, keep served scores bitwise identical,
#                  and emit BENCH_load.json that FlatJsonParse accepts (the
#                  binary re-reads its own output and exits nonzero on any
#                  of these)
#   4b. lifecycle  lifecycle_test (hot-swap/shadow/rollback conformance)
#                  plus a bench_load burst smoke whose mid-run corrupted
#                  candidate must be auto-rolled-back — the live-update
#                  path end to end (the steady smoke in stage 4 already
#                  gates the healthy mid-run promotion)
#   4c. gallery    bench_gallery --quick smoke: enroll/search candidate
#                  index must hold recall@64 >= 0.95 vs the exhaustive
#                  oracle, round-trip bitwise through save/load, and serve
#                  SearchAsync scores bitwise identical to offline
#                  ScorePairs (the binary re-parses its own JSON and exits
#                  nonzero on any gate failure)
#   5. scalar      ADAMEL_FORCE_SCALAR=1 full ctest against the tier-1
#                  build — pins the kernel dispatch to the scalar backend,
#                  proving nothing depends on SIMD being present and the
#                  bitwise parity contract holds end to end
#   6. tsan        ThreadSanitizer build; thread-pool, parallel-ops,
#                  telemetry, and serving tests (serve_test hammers the
#                  micro-batcher and registry from concurrent clients;
#                  deadlock_test exercises the DESIGN.md §8.4 lock-order
#                  contracts with a model that re-enters the service;
#                  lifecycle_test swaps models under concurrent load)
#   7. notelemetry ADAMEL_TELEMETRY=OFF build, full ctest — proves the
#                  telemetry macros compile to no-ops and nothing depends
#                  on them being live
#   8. asan        AddressSanitizer build; serialization/checkpoint tests
#                  (the code that parses untrusted bytes from disk) plus
#                  kernels_test (hand-vectorized loads/stores and packing),
#                  gallery_test, and the corruption sweeps over checkpoint
#                  and gallery index files
#   9. ubsan       UndefinedBehaviorSanitizer build (-fno-sanitize-recover),
#                  full ctest
#  10. debug       ADAMEL_DEBUG_CHECKS=ON build, full ctest — enables the
#                  ADAMEL_DCHECK family, post-op NaN/Inf screening, and the
#                  autograd-graph validators
#
# Environment:
#   BUILD_DIR             main build tree (default: build)
#   TSA_BUILD_DIR         clang thread-safety build tree (default: build-tsa)
#   TSAN_BUILD_DIR        sanitizer build tree (default: build-tsan)
#   NOTELEMETRY_BUILD_DIR telemetry-off build tree (default: build-notel)
#   ASAN_BUILD_DIR        sanitizer build tree (default: build-asan)
#   UBSAN_BUILD_DIR       sanitizer build tree (default: build-ubsan)
#   DEBUG_BUILD_DIR       debug-checks build tree (default: build-dbg)
#   JOBS                  parallel build jobs (default: nproc)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
TSA_BUILD_DIR="${TSA_BUILD_DIR:-${REPO_ROOT}/build-tsa}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-${REPO_ROOT}/build-tsan}"
NOTELEMETRY_BUILD_DIR="${NOTELEMETRY_BUILD_DIR:-${REPO_ROOT}/build-notel}"
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-${REPO_ROOT}/build-asan}"
UBSAN_BUILD_DIR="${UBSAN_BUILD_DIR:-${REPO_ROOT}/build-ubsan}"
DEBUG_BUILD_DIR="${DEBUG_BUILD_DIR:-${REPO_ROOT}/build-dbg}"
JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: configure + build (warnings are errors) =="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -G Ninja -DADAMEL_WERROR=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== tier-1: ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== lint: adamel_lint over src/ bench/ examples/ =="
"${BUILD_DIR}/tools/lint/adamel_lint" "${REPO_ROOT}" src bench examples

echo "== tsa: clang -Wthread-safety build (lock-discipline proof) =="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B "${TSA_BUILD_DIR}" -S "${REPO_ROOT}" -G Ninja \
    -DCMAKE_CXX_COMPILER=clang++ -DADAMEL_THREAD_SAFETY=ON -DADAMEL_WERROR=ON
  cmake --build "${TSA_BUILD_DIR}" -j "${JOBS}"
else
  echo "tsa: clang++ not found on PATH; skipping (CI runs this gate)"
fi

echo "== serve: bench_serving --quick smoke (bitwise determinism gate) =="
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_serving
"${BUILD_DIR}/bench/bench_serving" --quick --out "${BUILD_DIR}/bench_smoke"

echo "== load: bench_load steady smoke (open-loop deadline/shed gate) =="
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_load
"${BUILD_DIR}/bench/bench_load" --quick --schedule=steady --duration_s=2 \
  --out "${BUILD_DIR}/bench_smoke"

echo "== lifecycle: conformance tests + burst rollback smoke =="
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target lifecycle_test
"${BUILD_DIR}/tests/lifecycle_test"
"${BUILD_DIR}/bench/bench_load" --quick --schedule=burst --duration_s=2 \
  --out "${BUILD_DIR}/bench_smoke"

echo "== gallery: bench_gallery --quick smoke (recall + bitwise gates) =="
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_gallery
"${BUILD_DIR}/bench/bench_gallery" --quick --out "${BUILD_DIR}/bench_smoke"

echo "== scalar: full ctest with ADAMEL_FORCE_SCALAR=1 =="
ADAMEL_FORCE_SCALAR=1 ctest --test-dir "${BUILD_DIR}" --output-on-failure \
  -j "${JOBS}"

echo "== tsan: configure + build parallel tests =="
cmake -B "${TSAN_BUILD_DIR}" -S "${REPO_ROOT}" -G Ninja \
  -DADAMEL_SANITIZE=thread
cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}" \
  --target parallel_test ops_test obs_test serve_test loadgen_test \
  deadlock_test lifecycle_test gallery_test

echo "== tsan: run parallel tests =="
"${TSAN_BUILD_DIR}/tests/parallel_test"
"${TSAN_BUILD_DIR}/tests/ops_test" --gtest_filter='OpsForward.MatMul*:OpsGradient.MatMul*'
"${TSAN_BUILD_DIR}/tests/obs_test"
"${TSAN_BUILD_DIR}/tests/serve_test"
"${TSAN_BUILD_DIR}/tests/loadgen_test"
"${TSAN_BUILD_DIR}/tests/deadlock_test"
"${TSAN_BUILD_DIR}/tests/lifecycle_test"
"${TSAN_BUILD_DIR}/tests/gallery_test"

echo "== notelemetry: configure + build (ADAMEL_TELEMETRY=OFF) =="
cmake -B "${NOTELEMETRY_BUILD_DIR}" -S "${REPO_ROOT}" -G Ninja \
  -DADAMEL_TELEMETRY=OFF -DADAMEL_WERROR=ON
cmake --build "${NOTELEMETRY_BUILD_DIR}" -j "${JOBS}"

echo "== notelemetry: full ctest =="
ctest --test-dir "${NOTELEMETRY_BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== asan: configure + build serialization tests =="
cmake -B "${ASAN_BUILD_DIR}" -S "${REPO_ROOT}" -G Ninja \
  -DADAMEL_SANITIZE=address
cmake --build "${ASAN_BUILD_DIR}" -j "${JOBS}" \
  --target serialize_test checkpoint_test kernels_test gallery_test \
  corruption_test

echo "== asan: run serialization + kernel tests =="
"${ASAN_BUILD_DIR}/tests/serialize_test"
"${ASAN_BUILD_DIR}/tests/checkpoint_test"
"${ASAN_BUILD_DIR}/tests/kernels_test"
"${ASAN_BUILD_DIR}/tests/gallery_test"
"${ASAN_BUILD_DIR}/tests/corruption_test"

echo "== ubsan: configure + build =="
cmake -B "${UBSAN_BUILD_DIR}" -S "${REPO_ROOT}" -G Ninja \
  -DADAMEL_SANITIZE=undefined
cmake --build "${UBSAN_BUILD_DIR}" -j "${JOBS}"

echo "== ubsan: full ctest =="
ctest --test-dir "${UBSAN_BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== debug-checks: configure + build =="
cmake -B "${DEBUG_BUILD_DIR}" -S "${REPO_ROOT}" -G Ninja \
  -DADAMEL_DEBUG_CHECKS=ON
cmake --build "${DEBUG_BUILD_DIR}" -j "${JOBS}"

echo "== debug-checks: full ctest =="
ctest --test-dir "${DEBUG_BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== all checks passed =="
